//! Shared quantization building blocks for the baseline methods: per-group
//! and per-channel min/max quantization, calibrated channel ordering, and
//! the calibrate-then-freeze row-stream driver behind every token-granular
//! baseline's incremental cache path.

use oaken_core::{KvRowStream, UniformQuantizer};

/// Quantize-dequantizes one row with one min/max scale per `group`
/// consecutive channels, appending `row.len()` values to `out` — the
/// per-row kernel both the batch and the streaming paths share.
///
/// # Panics
///
/// Panics if `group == 0`.
pub fn quantize_groups_row_into(row: &[f32], group: usize, bits: u8, out: &mut Vec<f32>) {
    assert!(group > 0, "group size must be positive");
    for chunk in row.chunks(group) {
        let q = UniformQuantizer::from_values(chunk, bits).expect("bit-width validated by caller");
        out.extend(chunk.iter().map(|&x| q.dequantize(q.quantize(x))));
    }
}

/// Quantize-dequantizes a `[rows × d]` matrix with one min/max scale per
/// `group` consecutive channels within each row (the granularity of Atom /
/// QServe after reordering).
///
/// # Panics
///
/// Panics if `data.len() != rows * d` or `group == 0`.
pub fn quantize_groups_per_row(
    data: &[f32],
    rows: usize,
    d: usize,
    group: usize,
    bits: u8,
) -> Vec<f32> {
    assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
    let mut out = Vec::with_capacity(data.len());
    for r in 0..rows {
        quantize_groups_row_into(&data[r * d..(r + 1) * d], group, bits, &mut out);
    }
    out
}

/// Quantize-dequantizes a `[rows × d]` matrix with one min/max scale per
/// channel (column), the granularity KIVI and KVQuant use for keys.
///
/// # Panics
///
/// Panics if `data.len() != rows * d`.
pub fn quantize_per_channel(data: &[f32], rows: usize, d: usize, bits: u8) -> Vec<f32> {
    assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
    let mut out = vec![0.0f32; data.len()];
    let mut col = Vec::with_capacity(rows);
    for c in 0..d {
        col.clear();
        col.extend((0..rows).map(|r| data[r * d + c]));
        let q = UniformQuantizer::from_values(&col, bits).expect("valid bit-width");
        for r in 0..rows {
            out[r * d + c] = q.dequantize(q.quantize(col[r]));
        }
    }
    out
}

/// A calibrated channel permutation: channels sorted by mean magnitude so
/// that same-magnitude channels land in the same quantization group
/// (the RPTQ-style reordering used by Atom, QServe, and Tender).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelOrder {
    perm: Vec<usize>,
}

impl ChannelOrder {
    /// Identity ordering over `d` channels.
    pub fn identity(d: usize) -> Self {
        Self {
            perm: (0..d).collect(),
        }
    }

    /// Calibrates an ordering from a sample matrix by ascending mean
    /// absolute channel magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * d`.
    pub fn calibrate(data: &[f32], rows: usize, d: usize) -> Self {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let mut mags = vec![0.0f64; d];
        for r in 0..rows {
            for c in 0..d {
                mags[c] += f64::from(data[r * d + c].abs());
            }
        }
        let mut perm: Vec<usize> = (0..d).collect();
        perm.sort_by(|&a, &b| mags[a].partial_cmp(&mags[b]).unwrap());
        Self { perm }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Appends one permuted row to `out`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.len()`.
    pub fn permute_row_into(&self, row: &[f32], out: &mut Vec<f32>) {
        assert_eq!(row.len(), self.perm.len(), "channel count mismatch");
        out.extend(self.perm.iter().map(|&c| row[c]));
    }

    /// Scatters one permuted row back to channel order into `out`.
    ///
    /// # Panics
    ///
    /// Panics if the widths disagree with `self.len()`.
    pub fn unpermute_row_into(&self, row: &[f32], out: &mut [f32]) {
        assert_eq!(row.len(), self.perm.len(), "channel count mismatch");
        assert_eq!(out.len(), self.perm.len(), "channel count mismatch");
        for (i, &c) in self.perm.iter().enumerate() {
            out[c] = row[i];
        }
    }

    /// Applies the permutation to every row of a `[rows × d]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `d != self.len()` or the data length mismatches.
    pub fn permute(&self, data: &[f32], rows: usize, d: usize) -> Vec<f32> {
        assert_eq!(d, self.perm.len(), "channel count mismatch");
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let mut out = Vec::with_capacity(data.len());
        for r in 0..rows {
            self.permute_row_into(&data[r * d..(r + 1) * d], &mut out);
        }
        out
    }

    /// Inverts [`ChannelOrder::permute`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn unpermute(&self, data: &[f32], rows: usize, d: usize) -> Vec<f32> {
        assert_eq!(d, self.perm.len(), "channel count mismatch");
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let mut out = vec![0.0f32; data.len()];
        for r in 0..rows {
            self.unpermute_row_into(&data[r * d..(r + 1) * d], &mut out[r * d..(r + 1) * d]);
        }
        out
    }
}

/// A per-row quantization kernel whose calibration state (channel order,
/// smoothing scales, frozen group quantizers) is extracted once from the
/// first `calib_rows` tokens and immutable afterwards — the structure
/// shared by the Atom/QServe/Tender streaming paths.
pub(crate) trait CalibratedRowKernel: Send {
    /// Rows required before calibration freezes (≥ 1 effective).
    fn calib_rows(&self) -> usize;

    /// Batch roundtrip used while calibrating, bit-exact with the method's
    /// `roundtrip_matrix` on the same prefix.
    fn roundtrip_prefix(&self, data: &[f32], rows: usize, d: usize) -> Vec<f32>;

    /// Freezes calibration state from the `[rows × d]` calibration prefix.
    fn freeze(&mut self, calib: &[f32], rows: usize, d: usize);

    /// Processes one row with frozen calibration, appending `d` values.
    fn process_row(&mut self, row: &[f32], view: &mut Vec<f32>);
}

/// [`KvRowStream`] driver for [`CalibratedRowKernel`]s: during warm-up the
/// whole (tiny) view is recomputed through the batch path on each append;
/// once `calib_rows` tokens are seen the kernel freezes and every further
/// append is a pure O(d) extension of the view.
pub(crate) struct CalibratedStream<K> {
    kernel: K,
    d: usize,
    rows: usize,
    /// Exact rows buffered only during warm-up (dropped at freeze).
    buffered: Vec<f32>,
    frozen: bool,
}

impl<K: CalibratedRowKernel> CalibratedStream<K> {
    pub(crate) fn new(kernel: K, d: usize) -> Self {
        Self {
            kernel,
            d,
            rows: 0,
            buffered: Vec::new(),
            frozen: false,
        }
    }
}

impl<K: CalibratedRowKernel> KvRowStream for CalibratedStream<K> {
    fn append_row(&mut self, row: &[f32], view: &mut Vec<f32>) {
        assert_eq!(row.len(), self.d, "row width mismatch");
        self.rows += 1;
        if self.frozen {
            self.kernel.process_row(row, view);
            return;
        }
        self.buffered.extend_from_slice(row);
        view.clear();
        *view = self
            .kernel
            .roundtrip_prefix(&self.buffered, self.rows, self.d);
        if self.rows >= self.kernel.calib_rows().max(1) {
            let calib_rows = self.kernel.calib_rows().max(1).min(self.rows);
            let calib: Vec<f32> = self.buffered[..calib_rows * self.d].to_vec();
            self.kernel.freeze(&calib, calib_rows, self.d);
            self.buffered = Vec::new();
            self.frozen = true;
        }
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn reset(&mut self) {
        // Calibration (the frozen kernel) is per-model state and survives
        // the reset — exactly how Atom/QServe/Tender share their offline
        // channel orders and smoothing scales across serving requests. A
        // stream reset *before* freezing restarts warm-up from scratch.
        self.rows = 0;
        self.buffered.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| ((i * 2654435761) % 1000) as f32 / 100.0 - 5.0)
            .collect()
    }

    #[test]
    fn group_quant_error_shrinks_with_group_size() {
        let (rows, d) = (8, 256);
        let data = sample(rows, d);
        let err = |g: usize| {
            let q = quantize_groups_per_row(&data, rows, d, g, 4);
            data.iter()
                .zip(&q)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(err(16) <= err(256), "finer groups should not be worse");
    }

    #[test]
    fn per_channel_quant_shape_and_degenerate_column() {
        let rows = 4;
        let d = 3;
        // Column 2 is constant → degenerate range must reconstruct exactly.
        let data = vec![
            1.0, -2.0, 7.0, //
            3.0, 0.5, 7.0, //
            -1.0, 2.0, 7.0, //
            0.0, -0.5, 7.0,
        ];
        let q = quantize_per_channel(&data, rows, d, 4);
        assert_eq!(q.len(), data.len());
        for r in 0..rows {
            assert_eq!(q[r * d + 2], 7.0);
        }
    }

    #[test]
    fn channel_order_roundtrip() {
        let (rows, d) = (3, 16);
        let data = sample(rows, d);
        let order = ChannelOrder::calibrate(&data, rows, d);
        let p = order.permute(&data, rows, d);
        let back = order.unpermute(&p, rows, d);
        assert_eq!(back, data);
    }

    #[test]
    fn calibrated_order_sorts_by_magnitude() {
        let rows = 2;
        let d = 4;
        // Channel magnitudes: c0=10, c1=1, c2=5, c3=0.1
        let data = vec![10.0, 1.0, 5.0, 0.1, -10.0, -1.0, -5.0, -0.1];
        let order = ChannelOrder::calibrate(&data, rows, d);
        let p = order.permute(&data, rows, d);
        // First row after sorting ascending magnitude: 0.1, 1, 5, 10.
        assert_eq!(p[0].abs(), 0.1);
        assert_eq!(p[3].abs(), 10.0);
    }

    #[test]
    fn identity_order_is_noop() {
        let (rows, d) = (2, 8);
        let data = sample(rows, d);
        let order = ChannelOrder::identity(d);
        assert_eq!(order.permute(&data, rows, d), data);
        assert_eq!(order.len(), d);
        assert!(!order.is_empty());
    }
}

//! Reimplementations of the KV-cache quantization baselines the Oaken paper
//! compares against (Table 2, Figure 11):
//!
//! | Type | Method axis | Effective bits (paper) |
//! |---|---|---|
//! | [`Fp16Reference`] | no quantization | 16.00 |
//! | [`KvQuantStyle`] | per-vector quant + online topK outliers kept FP16 | 4.82–5.01 |
//! | [`KiviStyle`] | per-channel K / per-token V + FP16 residual window | 4.99 |
//! | [`AtomStyle`] | channel reorder + per-group INT4 + INT8 outlier channels | 4.25–4.63 |
//! | [`QServeStyle`] | SmoothQuant scaling + reorder + per-group INT4 | 4.25 |
//! | [`TenderStyle`] | magnitude-grouped channels, power-of-2 scales | 4.07–4.10 |
//!
//! These are faithful *algorithmic* reimplementations of the published
//! methods' quantization granularity and outlier handling — the two axes
//! that determine both their accuracy and their runtime cost — not ports of
//! the authors' CUDA kernels. Each reports an [`OnlineCost`] so the
//! performance simulator can charge the online sorting / reordering /
//! mixed-precision overheads the paper identifies as their weakness.
//!
//! Two capability axes matter to the serving stack beyond accuracy:
//!
//! * **streaming** — token-granular methods (FP16, Atom, QServe, Tender)
//!   implement `KvQuantizer::row_stream`, so the incremental cache and the
//!   paged pool append in O(d); per-channel/whole-tensor methods (KIVI,
//!   KVQuant) fall back to recompute-on-read, which also keeps them off
//!   the engine's batched-append/parallel-attention fast path (their views
//!   are not append-only);
//! * **prefix determinism** — only methods whose encoded rows are a pure
//!   function of the row itself may share prefix pages across sequences
//!   (`KvQuantizer::prefix_deterministic`); the calibrate-then-freeze and
//!   per-channel baselines report `false` and keep private page streams.
//!
//! [`OnlineCost`]: oaken_core::OnlineCost

mod atom;
mod common;
mod fp16;
mod half_float;
mod kivi;
mod kvquant;
mod qserve;
mod tender;

pub use atom::AtomStyle;
pub use common::{quantize_groups_per_row, quantize_per_channel, ChannelOrder};
pub use fp16::Fp16Reference;
pub use half_float::{f16_bits_to_f32, f16_roundtrip, f32_to_f16_bits};
pub use kivi::KiviStyle;
pub use kvquant::KvQuantStyle;
pub use qserve::QServeStyle;
pub use tender::TenderStyle;

use oaken_core::KvQuantizer;

/// Returns every baseline plus the FP16 reference, boxed behind the shared
/// trait — the evaluation harness iterates this to build Table 2 rows.
pub fn all_baselines() -> Vec<Box<dyn KvQuantizer>> {
    vec![
        Box::new(Fp16Reference::new()),
        Box::new(KvQuantStyle::default()),
        Box::new(KiviStyle::default()),
        Box::new(TenderStyle::default()),
        Box::new(AtomStyle::default()),
        Box::new(QServeStyle::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_core::KvKind;

    #[test]
    fn all_baselines_have_unique_names() {
        let bs = all_baselines();
        let mut names: Vec<&str> = bs.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn all_baselines_roundtrip_preserves_shape() {
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        for b in all_baselines() {
            let out = b.roundtrip_matrix(&data, 4, 128, 0, KvKind::Key);
            assert_eq!(out.len(), data.len(), "{}", b.name());
            assert!(out.iter().all(|v| v.is_finite()), "{}", b.name());
        }
    }

    #[test]
    fn streaming_support_matches_granularity() {
        // Token-granular methods stream; per-channel/whole-tensor methods
        // fall back (documented in their module docs).
        let d = 64;
        for (name, expect_stream) in [
            ("fp16", true),
            ("atom", true),
            ("qserve", true),
            ("tender", true),
            ("kivi", false),
            ("kvquant", false),
        ] {
            let b = all_baselines()
                .into_iter()
                .find(|b| b.name() == name)
                .unwrap();
            assert_eq!(
                b.row_stream(d, 0, KvKind::Key).is_some(),
                expect_stream,
                "{name}"
            );
        }
    }

    #[test]
    fn streams_bit_exact_with_batch_after_any_prefix() {
        let d = 96;
        let rows = 13; // crosses every calib_rows=4 boundary
        let data: Vec<f32> = (0..rows * d)
            .map(|i| {
                let c = i % d;
                let base = ((i * 48271) % 9973) as f32 / 997.0 - 5.0;
                if c % 31 == 0 {
                    base * 12.0
                } else {
                    base
                }
            })
            .collect();
        for b in all_baselines() {
            for kind in KvKind::ALL {
                let Some(mut stream) = b.row_stream(d, 0, kind) else {
                    continue;
                };
                let mut view = Vec::new();
                for r in 0..rows {
                    stream.append_row(&data[r * d..(r + 1) * d], &mut view);
                    let batch = b.roundtrip_matrix(&data[..(r + 1) * d], r + 1, d, 0, kind);
                    assert_eq!(
                        batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        view.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{} diverged at {} rows",
                        b.name(),
                        r + 1
                    );
                }
            }
        }
    }

    #[test]
    fn effective_bits_ordering_matches_paper() {
        // Tender < Atom/QServe < KVQuant/KIVI < FP16.
        let rows = 1024;
        let d = 4096;
        let eb = |q: &dyn KvQuantizer| q.effective_bits(rows, d);
        let fp16 = Fp16Reference::new();
        let kvq = KvQuantStyle::default();
        let kivi = KiviStyle::default();
        let atom = AtomStyle::default();
        let qserve = QServeStyle::default();
        let tender = TenderStyle::default();
        assert!(eb(&tender) < eb(&atom));
        assert!(eb(&atom) <= eb(&kvq));
        assert!(eb(&qserve) < eb(&kvq));
        assert!(eb(&kvq) < eb(&fp16));
        assert!(eb(&kivi) < eb(&fp16));
    }
}

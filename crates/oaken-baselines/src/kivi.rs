//! KIVI-style baseline: tuning-free asymmetric quantization, per-channel
//! for keys and per-token for values, with the most recent `residual`
//! tokens kept in full FP16 until a group of tokens fills up.
//!
//! The FP16 residual window plus fine-grained grouping is what gives KIVI
//! its accuracy — and its larger effective bitwidth (4.99 in Table 2) plus
//! the mixed-precision compute overhead Oaken's §6.2 identifies.
//!
//! KIVI is **not token-granular**: keys quantize per-channel (column
//! statistics over the whole prefix) and the trailing residual window
//! migrates rows from FP16 to quantized as it slides, so past rows are
//! rewritten on every append. The method therefore does not implement
//! `KvQuantizer::row_stream`, and the serving cache uses its documented
//! full-recompute fallback (which favours KIVI: scales are recomputed over
//! the complete prefix, never Oaken).

use crate::common::quantize_per_channel;
use crate::half_float::f16_roundtrip;
use oaken_core::{KvKind, KvQuantizer, OnlineCost, UniformQuantizer};

/// Configuration and implementation of the KIVI-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct KiviStyle {
    /// Most recent tokens kept FP16 (the "residual" window).
    pub residual: usize,
    /// Dense bit-width for quantized tokens.
    pub bits: u8,
    /// Channel-group size for per-channel key scales.
    pub group: usize,
}

impl KiviStyle {
    /// Creates a configuration.
    pub fn new(residual: usize, bits: u8, group: usize) -> Self {
        Self {
            residual,
            bits,
            group,
        }
    }
}

impl Default for KiviStyle {
    fn default() -> Self {
        Self::new(64, 4, 128)
    }
}

impl KvQuantizer for KiviStyle {
    fn name(&self) -> &'static str {
        "kivi"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let keep = self.residual.min(rows);
        let quant_rows = rows - keep;
        let mut out = Vec::with_capacity(data.len());
        if quant_rows > 0 {
            let body = &data[..quant_rows * d];
            let quantized = match kind {
                KvKind::Key => quantize_per_channel(body, quant_rows, d, self.bits),
                KvKind::Value => {
                    let mut v = Vec::with_capacity(body.len());
                    for r in 0..quant_rows {
                        let row = &body[r * d..(r + 1) * d];
                        // Per-token with channel groups for tighter scales.
                        for chunk in row.chunks(self.group) {
                            let q = UniformQuantizer::from_values(chunk, self.bits)
                                .expect("valid bit-width");
                            v.extend(chunk.iter().map(|&x| q.dequantize(q.quantize(x))));
                        }
                    }
                    v
                }
            };
            out.extend(quantized);
        }
        // Residual window stays FP16.
        out.extend(data[quant_rows * d..].iter().map(|&x| f16_roundtrip(x)));
        out
    }

    fn effective_bits(&self, rows: usize, d: usize) -> f64 {
        let rows = rows.max(1) as f64;
        let keep = (self.residual as f64).min(rows);
        let frac_fp16 = keep / rows;
        // Group scales: two FP16 values per channel-group per token.
        let scale_bits = 32.0 / self.group as f64;
        f64::from(self.bits) * (1.0 - frac_fp16)
            + 16.0 * frac_fp16
            + scale_bits
            + 32.0 / d.max(1) as f64
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 3.0,
            dequant_flops_per_elem: 2.0,
            sort_nlogn: false,
            channel_reorder: false,
            gpu_divergence_penalty: 5.0, // FP16 residual + INT4 mixed compute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| ((i * 131071) % 4096) as f32 / 512.0 - 4.0)
            .collect()
    }

    #[test]
    fn residual_window_is_lossless_to_fp16() {
        let q = KiviStyle::default();
        let (rows, d) = (100, 64);
        let data = sample(rows, d);
        let out = q.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        // Last `residual` rows only see FP16 rounding.
        for i in (rows - 64) * d..rows * d {
            assert!((out[i] - data[i]).abs() <= data[i].abs() / 1024.0 + 1e-6);
        }
    }

    #[test]
    fn short_sequences_entirely_fp16() {
        let q = KiviStyle::default();
        let (rows, d) = (8, 32);
        let data = sample(rows, d);
        let out = q.roundtrip_matrix(&data, rows, d, 0, KvKind::Value);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-6);
        }
        // And the effective bits reflect that.
        assert!(q.effective_bits(8, 32) > 15.0);
    }

    #[test]
    fn effective_bits_near_paper_for_long_contexts() {
        let q = KiviStyle::default();
        let eb = q.effective_bits(1024, 4096);
        assert!((4.5..5.5).contains(&eb), "{eb}");
    }

    #[test]
    fn longer_residual_is_more_accurate() {
        let (rows, d) = (256, 128);
        let data = sample(rows, d);
        let mse = |resid: usize| {
            let q = KiviStyle::new(resid, 4, 32);
            let out = q.roundtrip_matrix(&data, rows, d, 0, KvKind::Value);
            data.iter()
                .zip(&out)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(mse(128) <= mse(0));
    }
}

//! The FP16 no-quantization reference ("Original" row of Table 2, the vLLM
//! GPU baseline of Figure 11).

use crate::half_float::f16_roundtrip;
use oaken_core::{KvKind, KvQuantizer, KvRowStream, OnlineCost};

/// Stores the KV cache in FP16, the serving-system default.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp16Reference {
    _private: (),
}

impl Fp16Reference {
    /// Creates the reference.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KvQuantizer for Fp16Reference {
    fn name(&self) -> &'static str {
        "fp16"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        data.iter().map(|&x| f16_roundtrip(x)).collect()
    }

    fn effective_bits(&self, _rows: usize, _d: usize) -> f64 {
        16.0
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost::free()
    }

    fn row_stream(&self, d: usize, _layer: usize, _kind: KvKind) -> Option<Box<dyn KvRowStream>> {
        Some(Box::new(Fp16RowStream { d, rows: 0 }))
    }

    /// Each element converts to FP16 independently — trivially a pure
    /// function of the row, so FP16 pages are prefix-shareable.
    fn prefix_deterministic(&self) -> bool {
        true
    }
}

/// Streaming FP16 path: each element converts independently, so appends
/// are trivially O(d) and bit-exact with the batch path.
struct Fp16RowStream {
    d: usize,
    rows: usize,
}

impl KvRowStream for Fp16RowStream {
    fn append_row(&mut self, row: &[f32], view: &mut Vec<f32>) {
        assert_eq!(row.len(), self.d, "row width mismatch");
        view.extend(row.iter().map(|&x| f16_roundtrip(x)));
        self.rows += 1;
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn payload_bytes(&self) -> Option<usize> {
        Some(self.rows * self.d * 2)
    }

    fn reset(&mut self) {
        self.rows = 0;
    }

    fn last_row_payload(&self) -> Option<(usize, usize)> {
        (self.rows > 0).then_some((self.d * 2, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_reference_is_nearly_lossless() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.173).sin() * 8.0).collect();
        let q = Fp16Reference::new();
        let out = q.roundtrip_matrix(&data, 2, 128, 0, KvKind::Key);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-6);
        }
        assert_eq!(q.effective_bits(10, 10), 16.0);
        assert_eq!(q.online_cost(), OnlineCost::free());
    }
}

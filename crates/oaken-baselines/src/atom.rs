//! Atom-style baseline: RPTQ-style channel reordering + per-group INT4
//! quantization, with the highest-magnitude channels promoted to INT8.
//!
//! Reordering clusters channels of similar magnitude into the same group so
//! a shared scale hurts less, but the granularity remains per-group — the
//! "exceptions" in the KV distribution (discontinuous outliers outside the
//! usual channels, §4.1 Observation 3) still land inside coarse groups and
//! cost accuracy, which is exactly the weakness Table 2 shows.

use crate::common::{quantize_groups_per_row, ChannelOrder};
use oaken_core::{KvKind, KvQuantizer, OnlineCost, UniformQuantizer};

/// Configuration and implementation of the Atom-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct AtomStyle {
    /// Channels per quantization group after reordering.
    pub group: usize,
    /// Dense bit-width for normal channels.
    pub bits: u8,
    /// Fraction of highest-magnitude channels kept INT8.
    pub int8_channel_fraction: f64,
    /// Rows used to calibrate the channel order (offline in the real
    /// system — RPTQ-style reordering is calibration-based).
    pub calib_rows: usize,
}

impl AtomStyle {
    /// Creates a configuration.
    pub fn new(group: usize, bits: u8, int8_channel_fraction: f64) -> Self {
        Self {
            group,
            bits,
            int8_channel_fraction,
            calib_rows: 4,
        }
    }
}

impl Default for AtomStyle {
    fn default() -> Self {
        Self::new(128, 4, 0.02)
    }
}

impl KvQuantizer for AtomStyle {
    fn name(&self) -> &'static str {
        "atom"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        // Calibrate the reorder on the prefix only (offline in the real
        // system; the permutation application itself is the online cost).
        let calib = self.calib_rows.clamp(1, rows);
        let order = ChannelOrder::calibrate(&data[..calib * d], calib, d);
        let permuted = order.permute(data, rows, d);

        // After ascending-magnitude sort the INT8 channels are the last ones.
        let n_int8 = ((d as f64 * self.int8_channel_fraction).round() as usize).min(d);
        let d4 = d - n_int8;

        let mut out = vec![0.0f32; rows * d];
        if d4 > 0 {
            // INT4 region, per-group scales.
            let mut region = Vec::with_capacity(rows * d4);
            for r in 0..rows {
                region.extend_from_slice(&permuted[r * d..r * d + d4]);
            }
            let q4 = quantize_groups_per_row(&region, rows, d4, self.group.min(d4), self.bits);
            for r in 0..rows {
                out[r * d..r * d + d4].copy_from_slice(&q4[r * d4..(r + 1) * d4]);
            }
        }
        if n_int8 > 0 {
            for r in 0..rows {
                let chunk = &permuted[r * d + d4..(r + 1) * d];
                let q8 = UniformQuantizer::from_values(chunk, 8).expect("valid bit-width");
                for (i, &x) in chunk.iter().enumerate() {
                    out[r * d + d4 + i] = q8.dequantize(q8.quantize(x));
                }
            }
        }
        order.unpermute(&out, rows, d)
    }

    fn effective_bits(&self, _rows: usize, d: usize) -> f64 {
        let f8 = self.int8_channel_fraction;
        f64::from(self.bits) * (1.0 - f8) + 8.0 * f8 + 32.0 / self.group as f64
            + 32.0 / d.max(1) as f64
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 2.0,
            dequant_flops_per_elem: 2.0,
            sort_nlogn: false,
            channel_reorder: true, // indirect indexing per element
            gpu_divergence_penalty: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channelized(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| {
                let c = i % d;
                let base = ((i * 69621) % 8192) as f32 / 1024.0 - 4.0;
                if c.is_multiple_of(61) {
                    base * 20.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn reorder_beats_unordered_groups() {
        let (rows, d) = (16, 488);
        let data = channelized(rows, d);
        let atom = AtomStyle::default();
        let reordered = atom.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let unordered = quantize_groups_per_row(&data, rows, d, 128, 4);
        let mse = |out: &[f32]| {
            data.iter()
                .zip(out)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(
            mse(&reordered) < mse(&unordered),
            "reorder {} vs unordered {}",
            mse(&reordered),
            mse(&unordered)
        );
    }

    #[test]
    fn effective_bits_match_paper() {
        let eb = AtomStyle::default().effective_bits(1024, 4096);
        assert!((4.2..4.7).contains(&eb), "{eb}");
    }

    #[test]
    fn cost_includes_reorder() {
        assert!(AtomStyle::default().online_cost().channel_reorder);
    }

    #[test]
    fn all_int8_configuration_works() {
        let atom = AtomStyle::new(128, 4, 1.0);
        let (rows, d) = (4, 64);
        let data = channelized(rows, d);
        let out = atom.roundtrip_matrix(&data, rows, d, 0, KvKind::Value);
        assert_eq!(out.len(), data.len());
    }
}

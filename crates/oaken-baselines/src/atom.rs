//! Atom-style baseline: RPTQ-style channel reordering + per-group INT4
//! quantization, with the highest-magnitude channels promoted to INT8.
//!
//! Reordering clusters channels of similar magnitude into the same group so
//! a shared scale hurts less, but the granularity remains per-group — the
//! "exceptions" in the KV distribution (discontinuous outliers outside the
//! usual channels, §4.1 Observation 3) still land inside coarse groups and
//! cost accuracy, which is exactly the weakness Table 2 shows.

use crate::common::{
    quantize_groups_row_into, CalibratedRowKernel, CalibratedStream, ChannelOrder,
};
use oaken_core::{KvKind, KvQuantizer, KvRowStream, OnlineCost, UniformQuantizer};

/// Configuration and implementation of the Atom-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct AtomStyle {
    /// Channels per quantization group after reordering.
    pub group: usize,
    /// Dense bit-width for normal channels.
    pub bits: u8,
    /// Fraction of highest-magnitude channels kept INT8.
    pub int8_channel_fraction: f64,
    /// Rows used to calibrate the channel order (offline in the real
    /// system — RPTQ-style reordering is calibration-based).
    pub calib_rows: usize,
}

impl AtomStyle {
    /// Creates a configuration.
    pub fn new(group: usize, bits: u8, int8_channel_fraction: f64) -> Self {
        Self {
            group,
            bits,
            int8_channel_fraction,
            calib_rows: 4,
        }
    }
}

impl Default for AtomStyle {
    fn default() -> Self {
        Self::new(128, 4, 0.02)
    }
}

impl AtomStyle {
    /// Quantize-dequantizes one already-permuted row: per-group INT4 over
    /// the low-magnitude region, INT8 over the promoted tail. Appends
    /// `permuted.len()` values to `out`. Shared by the batch and streaming
    /// paths so they agree bit-for-bit.
    fn quantize_permuted_row(&self, permuted: &[f32], out: &mut Vec<f32>) {
        let d = permuted.len();
        let n_int8 = ((d as f64 * self.int8_channel_fraction).round() as usize).min(d);
        let d4 = d - n_int8;
        if d4 > 0 {
            quantize_groups_row_into(&permuted[..d4], self.group.min(d4), self.bits, out);
        }
        if n_int8 > 0 {
            let chunk = &permuted[d4..];
            let q8 = UniformQuantizer::from_values(chunk, 8).expect("valid bit-width");
            out.extend(chunk.iter().map(|&x| q8.dequantize(q8.quantize(x))));
        }
    }
}

impl KvQuantizer for AtomStyle {
    fn name(&self) -> &'static str {
        "atom"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        // Calibrate the reorder on the prefix only (offline in the real
        // system; the permutation application itself is the online cost).
        // After ascending-magnitude sort the INT8 channels are the last
        // ones; every row is then processed independently.
        let calib = self.calib_rows.clamp(1, rows);
        let order = ChannelOrder::calibrate(&data[..calib * d], calib, d);
        let mut out = vec![0.0f32; rows * d];
        let mut permuted = Vec::with_capacity(d);
        let mut qrow = Vec::with_capacity(d);
        for r in 0..rows {
            permuted.clear();
            order.permute_row_into(&data[r * d..(r + 1) * d], &mut permuted);
            qrow.clear();
            self.quantize_permuted_row(&permuted, &mut qrow);
            order.unpermute_row_into(&qrow, &mut out[r * d..(r + 1) * d]);
        }
        out
    }

    fn effective_bits(&self, _rows: usize, d: usize) -> f64 {
        let f8 = self.int8_channel_fraction;
        f64::from(self.bits) * (1.0 - f8)
            + 8.0 * f8
            + 32.0 / self.group as f64
            + 32.0 / d.max(1) as f64
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 2.0,
            dequant_flops_per_elem: 2.0,
            sort_nlogn: false,
            channel_reorder: true, // indirect indexing per element
            gpu_divergence_penalty: 1.5,
        }
    }

    fn row_stream(&self, d: usize, _layer: usize, _kind: KvKind) -> Option<Box<dyn KvRowStream>> {
        Some(Box::new(CalibratedStream::new(
            AtomKernel {
                cfg: *self,
                order: ChannelOrder::identity(d),
                permuted: Vec::with_capacity(d),
                qrow: Vec::with_capacity(d),
            },
            d,
        )))
    }
}

/// Streaming Atom kernel: the channel order freezes after `calib_rows`
/// tokens (offline calibration in the real system); per-row group
/// quantization is row-independent, so frozen-state appends are O(d) and
/// bit-exact with the batch path.
struct AtomKernel {
    cfg: AtomStyle,
    order: ChannelOrder,
    permuted: Vec<f32>,
    qrow: Vec<f32>,
}

impl CalibratedRowKernel for AtomKernel {
    fn calib_rows(&self) -> usize {
        self.cfg.calib_rows
    }

    fn roundtrip_prefix(&self, data: &[f32], rows: usize, d: usize) -> Vec<f32> {
        self.cfg.roundtrip_matrix(data, rows, d, 0, KvKind::Key)
    }

    fn freeze(&mut self, calib: &[f32], rows: usize, d: usize) {
        self.order = ChannelOrder::calibrate(calib, rows, d);
    }

    fn process_row(&mut self, row: &[f32], view: &mut Vec<f32>) {
        self.permuted.clear();
        self.order.permute_row_into(row, &mut self.permuted);
        self.qrow.clear();
        self.cfg
            .quantize_permuted_row(&self.permuted, &mut self.qrow);
        let start = view.len();
        view.resize(start + row.len(), 0.0);
        self.order
            .unpermute_row_into(&self.qrow, &mut view[start..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::quantize_groups_per_row;

    fn channelized(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| {
                let c = i % d;
                let base = ((i * 69621) % 8192) as f32 / 1024.0 - 4.0;
                if c.is_multiple_of(61) {
                    base * 20.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn reorder_beats_unordered_groups() {
        let (rows, d) = (16, 488);
        let data = channelized(rows, d);
        let atom = AtomStyle::default();
        let reordered = atom.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let unordered = quantize_groups_per_row(&data, rows, d, 128, 4);
        let mse = |out: &[f32]| {
            data.iter()
                .zip(out)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(
            mse(&reordered) < mse(&unordered),
            "reorder {} vs unordered {}",
            mse(&reordered),
            mse(&unordered)
        );
    }

    #[test]
    fn effective_bits_match_paper() {
        let eb = AtomStyle::default().effective_bits(1024, 4096);
        assert!((4.2..4.7).contains(&eb), "{eb}");
    }

    #[test]
    fn cost_includes_reorder() {
        assert!(AtomStyle::default().online_cost().channel_reorder);
    }

    #[test]
    fn all_int8_configuration_works() {
        let atom = AtomStyle::new(128, 4, 1.0);
        let (rows, d) = (4, 64);
        let data = channelized(rows, d);
        let out = atom.roundtrip_matrix(&data, rows, d, 0, KvKind::Value);
        assert_eq!(out.len(), data.len());
    }
}

//! Criterion benchmarks of the attention substrate: single-token MHA/GQA
//! over growing KV caches, the operation whose memory traffic the whole
//! paper targets.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oaken_model::{attend_one, AttentionShape};

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention");
    for seq_len in [128usize, 512, 2048] {
        let shape = AttentionShape {
            num_heads: 8,
            num_kv_heads: 8,
            head_dim: 64,
            window: None,
        };
        let q = vec![0.5f32; shape.q_dim()];
        let keys = vec![0.25f32; seq_len * shape.kv_dim()];
        let values = vec![0.75f32; seq_len * shape.kv_dim()];
        group.bench_function(format!("mha_seq{seq_len}"), |b| {
            b.iter(|| attend_one(black_box(&q), &keys, &values, seq_len, &shape))
        });
    }
    // GQA with 4× fewer KV heads: same query width, quarter the KV traffic.
    let gqa = AttentionShape {
        num_heads: 8,
        num_kv_heads: 2,
        head_dim: 64,
        window: None,
    };
    let q = vec![0.5f32; gqa.q_dim()];
    let keys = vec![0.25f32; 2048 * gqa.kv_dim()];
    let values = vec![0.75f32; 2048 * gqa.kv_dim()];
    group.bench_function("gqa_seq2048", |b| {
        b.iter(|| attend_one(black_box(&q), &keys, &values, 2048, &gqa))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_attention
}
criterion_main!(benches);

//! Criterion benchmark of the incremental streaming cache vs the legacy
//! full-recompute path at CI-friendly sequence lengths. The committed
//! `BENCH_decode.json` baseline comes from the `decode_scaling` binary,
//! which sweeps up to 8k tokens; this bench tracks the same two paths at
//! 256/1024 tokens so regressions surface in seconds, not minutes. Both
//! share `oaken_bench::decode_workload` so they measure the same data.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oaken_bench::decode_workload::{decode_rows, oaken, KV_DIM};
use oaken_core::KvQuantizer;
use oaken_model::{KvCacheBackend, QuantizedCache};
use std::sync::Arc;

fn decode(q: &Arc<dyn KvQuantizer>, seq_len: usize, incremental: bool, rows: &[Vec<f32>]) {
    let mut cache = if incremental {
        QuantizedCache::new(q.clone())
    } else {
        QuantizedCache::new_recompute(q.clone())
    };
    cache.reset(1, KV_DIM);
    for t in 0..seq_len {
        cache.append(0, &rows[2 * t], &rows[2 * t + 1]);
        black_box(cache.keys(0));
        black_box(cache.values(0));
    }
}

fn bench_decode_scaling(c: &mut Criterion) {
    let q = oaken();
    let mut group = c.benchmark_group("decode_scaling");
    for seq_len in [256usize, 1024] {
        let rows = decode_rows(seq_len);
        group.bench_function(format!("incremental_seq{seq_len}"), |b| {
            b.iter(|| decode(&q, seq_len, true, &rows))
        });
        group.bench_function(format!("recompute_seq{seq_len}"), |b| {
            b.iter(|| decode(&q, seq_len, false, &rows))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_decode_scaling
}
criterion_main!(benches);

//! Criterion benchmarks of the fused dense-and-sparse encoding: packing,
//! COO decode, and the capacity arithmetic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oaken_core::{CooEntry, FusedVector, GroupKind, ScaleSet};

fn build_parts(d: usize) -> (Vec<u8>, Vec<CooEntry>) {
    let codes: Vec<u8> = (0..d).map(|i| (i % 16) as u8).collect();
    let outliers: Vec<CooEntry> = (0..d / 10)
        .map(|i| CooEntry {
            index: i * 10,
            group: if i % 3 == 0 {
                GroupKind::Inner
            } else {
                GroupKind::Outer
            },
            high_side: i % 2 == 0,
        })
        .collect();
    (codes, outliers)
}

fn bench_encoding(c: &mut Criterion) {
    let d = 4096;
    let (codes, outliers) = build_parts(d);
    let scales = ScaleSet::default();

    let mut group = c.benchmark_group("fused_encoding_4096");
    group.bench_function("encode", |b| {
        b.iter(|| {
            FusedVector::from_parts(d, 64, black_box(&codes), black_box(&outliers), scales).unwrap()
        })
    });
    let fv = FusedVector::from_parts(d, 64, &codes, &outliers, scales).unwrap();
    group.bench_function("decode_outliers", |b| {
        b.iter(|| black_box(&fv).decode_outliers())
    });
    group.bench_function("dense_code_scan", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..d {
                acc += u32::from(black_box(&fv).dense_code(i));
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_encoding
}
criterion_main!(benches);

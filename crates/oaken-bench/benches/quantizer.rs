//! Criterion benchmarks of the quantization hot paths: Oaken's online
//! quantize/dequantize versus the baseline roundtrips, per 4096-element KV
//! vector (Llama2-7B's kv_dim).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oaken_baselines::{KiviStyle, KvQuantStyle, QServeStyle, TenderStyle};
use oaken_core::{KvKind, KvQuantizer, OakenConfig, OakenQuantizer, OfflineProfiler};

fn kv_vector(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let u = ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed)
                >> 33) as f32
                / (1u64 << 31) as f32;
            let base = (u - 0.5) * 6.0;
            match i % 53 {
                0 => base * 10.0,
                1 => base * 0.01,
                _ => base,
            }
        })
        .collect()
}

fn oaken_quantizer(d: usize) -> OakenQuantizer {
    let config = OakenConfig::default();
    let mut p = OfflineProfiler::new(config.clone(), 1);
    for s in 0..16 {
        p.observe(0, KvKind::Key, &kv_vector(d, s));
        p.observe(0, KvKind::Value, &kv_vector(d, s));
    }
    OakenQuantizer::new(config, p.finish())
}

fn bench_quantizers(c: &mut Criterion) {
    let d = 4096;
    let x = kv_vector(d, 999);
    let oaken = oaken_quantizer(d);

    let mut group = c.benchmark_group("quantize_4096");
    group.bench_function("oaken_quantize", |b| {
        b.iter(|| {
            oaken
                .quantize_vector(black_box(&x), 0, KvKind::Key)
                .unwrap()
        })
    });
    let fused = oaken.quantize_vector(&x, 0, KvKind::Key).unwrap();
    group.bench_function("oaken_dequantize", |b| {
        b.iter(|| {
            oaken
                .dequantize_vector(black_box(&fused), 0, KvKind::Key)
                .unwrap()
        })
    });
    group.bench_function("oaken_roundtrip", |b| {
        b.iter(|| oaken.roundtrip_matrix(black_box(&x), 1, d, 0, KvKind::Key))
    });
    for (name, q) in [
        (
            "kvquant",
            Box::new(KvQuantStyle::default()) as Box<dyn KvQuantizer>,
        ),
        ("kivi", Box::new(KiviStyle::default())),
        ("qserve", Box::new(QServeStyle::default())),
        ("tender", Box::new(TenderStyle::default())),
    ] {
        group.bench_function(format!("{name}_roundtrip"), |b| {
            b.iter(|| q.roundtrip_matrix(black_box(&x), 1, d, 0, KvKind::Key))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_quantizers
}
criterion_main!(benches);

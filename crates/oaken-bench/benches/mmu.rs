//! Criterion benchmarks of the MMU: token writes, burst planning, and
//! request retirement.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oaken_mmu::{MmuSim, StreamClass, StreamKey};

fn key(request: u32, head: u16) -> StreamKey {
    StreamKey {
        request,
        layer: 0,
        head,
        class: StreamClass::Dense,
    }
}

fn bench_mmu(c: &mut Criterion) {
    let mut group = c.benchmark_group("mmu");
    group.bench_function("write_1k_tokens", |b| {
        b.iter(|| {
            let mut mmu = MmuSim::new(4096, 4096);
            for t in 0..1024u32 {
                mmu.write_token(key(1, (t % 8) as u16), 64).unwrap();
            }
            black_box(mmu.allocator().allocated_pages())
        })
    });

    let mut mmu = MmuSim::new(4096, 4096);
    for t in 0..1024u32 {
        mmu.write_token(key(1, (t % 8) as u16), 64).unwrap();
    }
    group.bench_function("read_plan_1k", |b| {
        b.iter(|| black_box(&mmu).read_plan(&key(1, 0), 64))
    });
    group.bench_function("alloc_free_request", |b| {
        b.iter(|| {
            let mut m = MmuSim::new(512, 4096);
            for t in 0..128u32 {
                m.write_token(key(7, (t % 4) as u16), 256).unwrap();
            }
            m.free_request(7).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_mmu
}
criterion_main!(benches);

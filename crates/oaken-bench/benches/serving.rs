//! Criterion benchmarks of the serving simulation: full workload runs of
//! the system model and trace replays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use oaken_accel::{AcceleratorSpec, QuantPolicy, SystemModel, Workload};
use oaken_model::ModelConfig;
use oaken_serving::{simulate_trace, synthesize_requests, TraceSpec};

fn bench_serving(c: &mut Criterion) {
    let model = ModelConfig::llama2_13b();
    let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());

    let mut group = c.benchmark_group("serving_sim");
    group.bench_function("workload_1k1k_b256", |b| {
        b.iter(|| oaken.run(black_box(&model), &Workload::one_k_one_k(256)))
    });

    let requests = synthesize_requests(&TraceSpec::burstgpt(), 128, 11);
    group.bench_function("trace_replay_128req", |b| {
        b.iter(|| simulate_trace(&oaken, black_box(&model), &requests, 64))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_serving
}
criterion_main!(benches);

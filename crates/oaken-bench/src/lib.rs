//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (`fig01` … `fig14`, `table2` … `table4`) that prints the
//! corresponding rows/series. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured records.

use std::fmt::Display;

/// Prints a header banner for one experiment.
pub fn banner(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// Prints one row of a fixed-width table.
pub fn row(cells: &[&dyn Display], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$}  ", cell, width = width));
    }
    println!("{}", line.trim_end());
}

/// Formats a float with `digits` decimals (helper for row cells).
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// The standard batch sweep of Figure 11.
pub const BATCH_SWEEP: [usize; 5] = [16, 32, 64, 128, 256];

/// The trace batch sweep of Figure 14.
pub const TRACE_BATCH_SWEEP: [usize; 4] = [16, 32, 64, 128];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(BATCH_SWEEP.len(), 5);
        banner("test", "caption");
        row(&[&"a", &1.5], &[4, 6]);
    }
}

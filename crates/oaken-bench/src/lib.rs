//! Shared helpers for the figure/table regeneration binaries and the
//! committed-baseline generators.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (`fig01` … `fig14`, `table2` … `table4`) that prints the
//! corresponding rows/series. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured records.
//!
//! Two binaries additionally write the repo's committed performance
//! baselines: `decode_scaling` (→ `BENCH_decode.json`, incremental vs
//! recompute cache) and `serving_scaling` (→ `BENCH_serving.json`, the
//! executed engine's batch / capacity / prefix-overlap / thread sweeps);
//! `benches/` holds the criterion micro-benchmarks that ride the same
//! workloads so CI regressions and the committed baselines can never
//! measure different things.

use std::fmt::Display;

/// Prints a header banner for one experiment.
pub fn banner(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// Prints one row of a fixed-width table.
pub fn row(cells: &[&dyn Display], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$}  ", cell, width = width));
    }
    println!("{}", line.trim_end());
}

/// Formats a float with `digits` decimals (helper for row cells).
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Shared decode-benchmark workload: the KV-row generator and profiled
/// Oaken quantizer used by **both** the `decode_scaling` binary (source of
/// the committed `BENCH_decode.json` baseline) and the criterion
/// `decode_scaling` bench, so the CI regression bench and the committed
/// baseline can never silently diverge onto different workloads.
pub mod decode_workload {
    use oaken_core::{KvKind, KvQuantizer, OakenConfig, OakenQuantizer, OfflineProfiler};
    use std::sync::Arc;

    /// KV-cache width used by the decode-scaling measurements.
    pub const KV_DIM: usize = 128;

    /// Deterministic KV-like row with occasional outer/inner outliers.
    pub fn kv_row(d: usize, seed: u64) -> Vec<f32> {
        (0..d)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed * 6_151)
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 6.0;
                match i % 31 {
                    0 => base * 10.0,
                    1 => base * 0.02,
                    _ => base,
                }
            })
            .collect()
    }

    /// Single-layer Oaken quantizer profiled on the workload distribution.
    pub fn oaken() -> Arc<dyn KvQuantizer> {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 1);
        for s in 0..32 {
            p.observe(0, KvKind::Key, &kv_row(KV_DIM, s));
            p.observe(0, KvKind::Value, &kv_row(KV_DIM, s + 999));
        }
        Arc::new(OakenQuantizer::new(config, p.try_finish().unwrap()))
    }

    /// The decode token rows for a `seq_len`-token run (2 rows per token:
    /// key + value).
    pub fn decode_rows(seq_len: usize) -> Vec<Vec<f32>> {
        (0..seq_len * 2)
            .map(|i| kv_row(KV_DIM, 10_000 + i as u64))
            .collect()
    }
}

/// The standard batch sweep of Figure 11.
pub const BATCH_SWEEP: [usize; 5] = [16, 32, 64, 128, 256];

/// The trace batch sweep of Figure 14.
pub const TRACE_BATCH_SWEEP: [usize; 4] = [16, 32, 64, 128];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(BATCH_SWEEP.len(), 5);
        banner("test", "caption");
        row(&[&"a", &1.5], &[4, 6]);
    }
}

//! Extension experiment: energy per token (§6.2's power numbers combined
//! with the performance model) — tokens/joule for the A100 baselines and
//! the Oaken accelerators.

use oaken_accel::{energy_report, AcceleratorSpec, QuantPolicy, SystemModel, Workload};
use oaken_bench::{banner, f, row};
use oaken_model::ModelConfig;

fn main() {
    banner(
        "Energy",
        "tokens per joule, Llama2-13B, 1K:1K (power: A100 TDP vs Table 4 model)",
    );
    let model = ModelConfig::llama2_13b();
    let systems = [
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16()),
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::qserve()),
        SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16()),
        SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()),
    ];
    row(
        &[
            &"batch",
            &"system",
            &"power (W)",
            &"tokens/J",
            &"J per 1K tokens",
        ],
        &[6, 20, 10, 10, 16],
    );
    for batch in [32usize, 128, 256] {
        let w = Workload::one_k_one_k(batch);
        for sys in &systems {
            let r = energy_report(sys, &model, &w);
            let jp1k = if r.tokens_per_joule > 0.0 {
                1000.0 / r.tokens_per_joule
            } else {
                f64::INFINITY
            };
            row(
                &[
                    &batch,
                    &r.system,
                    &f(r.power_w, 0),
                    &f(r.tokens_per_joule, 2),
                    &f(jp1k, 0),
                ],
                &[6, 20, 10, 10, 16],
            );
        }
    }
    println!();
    println!("Expected shape: Oaken-LPDDR combines ~44% lower power with the");
    println!("highest large-batch throughput, multiplying into the best");
    println!("energy per token of all systems (§6.2's efficiency claim).");
}

//! Ablation: fused dense-and-sparse encoding (§4.5) vs the naive
//! mixed-precision layout of prior work — how many bits each outlier costs
//! and what that does to the effective bitwidth and capacity gain.
//!
//! Prior dense-and-sparse schemes (KVQuant/SqueezeLLM) store each outlier
//! as 16 value bits + 6 index bits + 1 group bit = 23 bits. Oaken's fusion
//! re-uses the zeroed 4-bit dense slot for the outlier magnitude, leaving
//! 8 bits of genuinely new storage per outlier.

use oaken_bench::{banner, f, row};
use oaken_core::{GroupRatios, OakenConfig};

fn main() {
    banner(
        "Ablation: fused encoding",
        "outlier storage cost vs effective bitwidth (d = 4096)",
    );
    row(
        &[
            &"outlier %",
            &"fused eff-bits",
            &"naive-23b eff-bits",
            &"fused x vs fp16",
            &"naive x vs fp16",
        ],
        &[10, 15, 19, 16, 16],
    );
    for outlier_pct in [2u32, 4, 6, 8, 10, 14, 18, 20] {
        let frac = f64::from(outlier_pct) / 100.0;
        let ratios =
            GroupRatios::new(frac * 0.4, 1.0 - frac, frac * 0.6).expect("valid sweep ratios");
        let config = OakenConfig {
            ratios,
            ..OakenConfig::default()
        };
        let fused = config.predicted_effective_bits(4096);
        // Naive layout: dense 4-bit codes stay allocated AND outliers cost
        // 23 bits each on top (value no longer fused into the dense slot).
        let naive = 4.0 + frac * 23.0 + 64.0 / 4096.0;
        row(
            &[
                &outlier_pct,
                &f(fused, 3),
                &f(naive, 3),
                &format!("{:.2}x", 16.0 / fused),
                &format!("{:.2}x", 16.0 / naive),
            ],
            &[10, 15, 19, 16, 16],
        );
    }
    println!();
    println!("Expected shape: at the paper's 10% outlier budget, fusion keeps");
    println!("the effective bitwidth at 4.8 bits where the naive layout needs");
    println!("6.3 — the gap widens linearly with the outlier fraction, which");
    println!("is what makes the wider Figure 12(a) sweep affordable at all.");
}

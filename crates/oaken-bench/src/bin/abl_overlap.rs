//! Ablation: what the §5.3 overlap of quantization/dequantization with DMA
//! and attention is worth — Oaken with engines overlapped (shipping
//! config), the same engines fully exposed, and the GPU kernel fallback.

use oaken_accel::{AcceleratorSpec, QuantPolicy, SystemModel, Workload};
use oaken_bench::{banner, f, row};
use oaken_model::ModelConfig;

fn main() {
    banner(
        "Ablation: (de)quantization overlap",
        "Llama2-7B, 1K:1K — what hiding the engines behind DMA buys",
    );
    let model = ModelConfig::llama2_7b();
    row(
        &[
            &"batch",
            &"overlapped (tok/s)",
            &"exposed (tok/s)",
            &"GPU kernels (tok/s)",
        ],
        &[6, 19, 16, 20],
    );
    let overlapped = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
    // Same hardware, engines' raw time fully on the critical path: model by
    // moving the work to "compute-core kernels" with no divergence penalty.
    let mut exposed_policy = QuantPolicy::oaken();
    exposed_policy.name = "Oaken-noverlap".to_owned();
    exposed_policy.dedicated_engine = false;
    exposed_policy.cost.gpu_divergence_penalty = 1.0;
    let exposed = SystemModel::new(AcceleratorSpec::oaken_lpddr(), exposed_policy);
    let gpu = SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::oaken_gpu());

    for batch in [16usize, 32, 64, 128, 256] {
        let w = Workload::one_k_one_k(batch);
        row(
            &[
                &batch,
                &f(overlapped.run(&model, &w).throughput, 0),
                &f(exposed.run(&model, &w).throughput, 0),
                &f(gpu.run(&model, &w).throughput, 0),
            ],
            &[6, 19, 16, 20],
        );
    }
    println!();
    println!("Expected shape: exposing the engine time costs a few percent of");
    println!("throughput (the engines are fast, the win is architectural");
    println!("simplicity of streaming); falling back to GPU kernels with warp");
    println!("divergence costs far more — the co-design argument of §5.");
}

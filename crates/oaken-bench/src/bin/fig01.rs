//! Figure 1: the bandwidth–capacity trade-off space of LLM serving
//! solutions, with modelled throughput where the system model covers the
//! platform.

use oaken_accel::tradeoff_space;
use oaken_bench::{banner, f, row};

fn main() {
    banner(
        "Figure 1",
        "effective bandwidth vs effective capacity (Llama2-13B, batch 256, 1K:1K)",
    );
    row(
        &[
            &"solution",
            &"category",
            &"eff-BW (TB/s)",
            &"eff-cap (GB)",
            &"tokens/s",
        ],
        &[12, 12, 14, 13, 10],
    );
    let mut points = tradeoff_space();
    points.sort_by(|a, b| {
        b.throughput
            .unwrap_or(0.0)
            .partial_cmp(&a.throughput.unwrap_or(0.0))
            .unwrap()
    });
    for p in &points {
        let tp = p.throughput.map_or_else(|| "-".to_owned(), |t| f(t, 0));
        row(
            &[
                &p.name,
                &p.category,
                &f(p.eff_bandwidth_tbps, 2),
                &f(p.eff_capacity_gb, 0),
                &tp,
            ],
            &[12, 12, 14, 13, 10],
        );
    }
    println!();
    println!("Expected shape: Oaken occupies the upper-right frontier (both");
    println!("effective bandwidth and capacity multiplied by 16/4.8), with the");
    println!("highest modelled throughput; PIM points are bandwidth-rich but");
    println!("capacity-poor; the A100 sits at raw HBM coordinates.");
}

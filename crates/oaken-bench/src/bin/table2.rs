//! Table 2: perplexity (Wikitext-like) and zero-shot accuracy (PIQA/
//! Winogrande/Hellaswag-like) for the FP16 reference, five baselines, and
//! Oaken, across the eight model proxies, with effective bitwidths.

use oaken_baselines::{
    AtomStyle, Fp16Reference, KiviStyle, KvQuantStyle, QServeStyle, TenderStyle,
};
use oaken_bench::{banner, f, row};
use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::EvalSpec;
use oaken_eval::{profile_oaken, EvalHarness};
use oaken_model::{Model, ModelConfig};
use std::sync::Arc;

fn main() {
    banner(
        "Table 2",
        "accuracy of KV quantization methods on the eight model proxies",
    );
    let mut loss_rows: Vec<(String, f64)> = Vec::new();
    for base in ModelConfig::paper_models() {
        let proxy = base.proxy(3, 48);
        // Distinct weights per model: fold the name into the seed.
        let seed = base.name.bytes().fold(314_159u64, |h, b| {
            h.wrapping_mul(31).wrapping_add(u64::from(b))
        });
        let model = Model::synthetic(proxy, seed);
        let harness = EvalHarness::new(&model, &EvalSpec::paper());
        let full_kv_dim = base.kv_dim();
        println!("\n--- {} (proxy) ---", base.name);
        row(
            &[
                &"method",
                &"ppl",
                &"piqa%",
                &"wino%",
                &"hella%",
                &"eff-bits",
            ],
            &[9, 8, 7, 7, 7, 8],
        );

        let oaken = profile_oaken(&model, OakenConfig::default(), 10, 48, 2718);
        let methods: Vec<(String, Option<Arc<dyn KvQuantizer>>)> = vec![
            ("original".to_owned(), Some(Arc::new(Fp16Reference::new()))),
            (
                "kvquant".to_owned(),
                Some(Arc::new(KvQuantStyle::default())),
            ),
            ("kivi".to_owned(), Some(Arc::new(KiviStyle::default()))),
            ("tender".to_owned(), Some(Arc::new(TenderStyle::default()))),
            ("atom".to_owned(), Some(Arc::new(AtomStyle::default()))),
            ("qserve".to_owned(), Some(Arc::new(QServeStyle::default()))),
            ("oaken".to_owned(), Some(Arc::new(oaken))),
        ];
        let mut original_acc = 0.0f64;
        for (label, method) in methods {
            // Report effective bits at the *full* model's KV width — the
            // proxy's tiny kv_dim would inflate per-vector scale overheads.
            let eff_bits = method
                .as_ref()
                .map_or(16.0, |m| m.effective_bits(1024, full_kv_dim));
            let r = harness.evaluate(method);
            if label == "original" {
                original_acc = r.mean_accuracy();
            } else {
                loss_rows.push((label.clone(), original_acc - r.mean_accuracy()));
            }
            row(
                &[
                    &label,
                    &f(r.perplexity, 3),
                    &f(r.piqa, 1),
                    &f(r.winogrande, 1),
                    &f(r.hellaswag, 1),
                    &f(eff_bits, 2),
                ],
                &[9, 8, 7, 7, 7, 8],
            );
        }
    }

    println!("\n--- mean zero-shot accuracy loss vs FP16 (all proxies) ---");
    for method in ["kvquant", "kivi", "tender", "atom", "qserve", "oaken"] {
        let losses: Vec<f64> = loss_rows
            .iter()
            .filter(|(m, _)| m == method)
            .map(|(_, l)| *l)
            .collect();
        let mean = losses.iter().sum::<f64>() / losses.len().max(1) as f64;
        println!("{method:>8}: {mean:+.2}%");
    }
    println!();
    println!("Expected shape (paper Table 2): Oaken within ~1% of FP16 and of");
    println!("KVQuant/KIVI (which spend more effective bits), clearly better");
    println!("than QServe/Atom/Tender, whose coarse per-group scales miss the");
    println!("distribution's exceptions.");
}

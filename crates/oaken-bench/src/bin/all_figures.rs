//! Artifact runner: regenerates every table and figure in sequence by
//! invoking the sibling binaries. Useful as a one-shot paper-artifact
//! reproduction (`cargo run --release -p oaken-bench --bin all_figures`).

use std::process::Command;

fn main() {
    let bins = [
        "fig01",
        "fig03",
        "fig04",
        "fig05",
        "fig06",
        "fig11",
        "fig12a",
        "fig12b",
        "fig13",
        "fig14",
        "table2",
        "table3",
        "table4",
        "abl_encoding",
        "abl_granularity",
        "abl_overlap",
        "energy",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("target dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n############ {bin} ############\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall {} artifacts regenerated", bins.len());
    } else {
        eprintln!("\nfailed artifacts: {failures:?}");
        std::process::exit(1);
    }
}

//! Figure 6: KV-cache value distribution observations on proxy models:
//! (a) per-layer min/max ranges, (b) cross-dataset consistency,
//! (c) channel concentration of top-magnitude keys.

use oaken_bench::{banner, f, row};
use oaken_eval::{channel_concentration, kv_layer_ranges};
use oaken_model::{Model, ModelConfig};

fn seq(n: usize, seed: u64) -> Vec<u32> {
    (0..n as u64)
        .map(|i| {
            let mixed =
                (i ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(6364136223846793005);
            ((mixed >> 33) % 256) as u32
        })
        .collect()
}

fn main() {
    banner(
        "Figure 6(a)",
        "per-layer KV ranges (Llama2-7B and OPT-6.7B proxies, Wikitext-like input)",
    );
    for (name, cfg) in [
        ("Llama2-7B-proxy", ModelConfig::llama2_7b().proxy(8, 64)),
        ("OPT-6.7B-proxy", ModelConfig::opt_6_7b().proxy(8, 64)),
    ] {
        let model = Model::synthetic(cfg, 1234);
        let ranges = kv_layer_ranges(&model, &[seq(48, 1)]);
        println!("\n--- {name} ---");
        row(
            &[&"layer", &"key min", &"key max", &"val min", &"val max"],
            &[6, 9, 9, 9, 9],
        );
        for r in &ranges {
            row(
                &[
                    &r.layer,
                    &f(r.key.min.into(), 2),
                    &f(r.key.max.into(), 2),
                    &f(r.value.min.into(), 2),
                    &f(r.value.max.into(), 2),
                ],
                &[6, 9, 9, 9, 9],
            );
        }
    }
    println!("\nExpected shape (Obs. 1): ranges differ across layers and models.\n");

    banner(
        "Figure 6(b)",
        "range consistency across datasets (Llama2-7B proxy)",
    );
    let model = Model::synthetic(ModelConfig::llama2_7b().proxy(8, 64), 1234);
    row(
        &[&"layer", &"wikitext", &"piqa-like", &"hellaswag-like"],
        &[6, 10, 10, 15],
    );
    let a = kv_layer_ranges(&model, &[seq(48, 1)]);
    let b = kv_layer_ranges(&model, &[seq(48, 777)]);
    let c = kv_layer_ranges(&model, &[seq(48, 31415)]);
    for ((ra, rb), rc) in a.iter().zip(&b).zip(&c) {
        row(
            &[
                &ra.layer,
                &f(ra.key.range().into(), 2),
                &f(rb.key.range().into(), 2),
                &f(rc.key.range().into(), 2),
            ],
            &[6, 10, 10, 15],
        );
    }
    println!("\nExpected shape (Obs. 2): per-layer key ranges are nearly");
    println!("identical across input distributions — thresholds can be");
    println!("profiled offline once per model.\n");

    banner(
        "Figure 6(c)",
        "concentration of top-4% key magnitudes in channels (layer 2)",
    );
    row(
        &[&"model", &"top-10% channels capture", &"channels hit"],
        &[18, 24, 13],
    );
    for (name, cfg) in [
        ("Llama2-7B-proxy", ModelConfig::llama2_7b().proxy(8, 64)),
        ("OPT-6.7B-proxy", ModelConfig::opt_6_7b().proxy(8, 64)),
    ] {
        let model = Model::synthetic(cfg, 1234);
        let (share, hit) = channel_concentration(&model, &seq(64, 5), 2, 0.04);
        row(
            &[&name, &format!("{:.0}%", share * 100.0), &hit],
            &[18, 24, 13],
        );
    }
    println!();
    println!("Expected shape (Obs. 3): most top-magnitude values concentrate");
    println!("in a few channels (the 'vertical lines'), but more channels are");
    println!("hit than the concentrated set — the discontinuous 'exceptions'");
    println!("that break per-channel-only schemes.");
}

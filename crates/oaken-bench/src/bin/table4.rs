//! Table 4: area of the Oaken compute-core components on TSMC 28 nm, plus
//! the §6.2 power comparison against the A100's TDP.

use oaken_accel::{AreaModel, PowerModel};
use oaken_bench::{banner, f, row};

fn main() {
    banner("Table 4", "area overhead of the Oaken modules (TSMC 28nm)");
    let model = AreaModel::tsmc28();
    row(&[&"module", &"area (mm^2)", &"ratio (%)"], &[26, 12, 10]);
    for c in model.table4() {
        row(
            &[&c.module, &f(c.area_mm2, 3), &f(c.ratio_percent, 2)],
            &[26, 12, 10],
        );
    }
    println!(
        "\nOaken module overhead (quant + dequant engines): {:.2}% of core",
        model.oaken_overhead_percent()
    );
    println!("(paper: 1.86% + 6.35% = 8.21%)");

    let power = PowerModel::oaken_lpddr().total_w(256, model.core_mm2());
    println!("\nAccelerator power (256 cores + LPDDR): {power:.1} W");
    println!("(paper: 222.7 W, 44.3% below the A100's 400 W TDP)");
    println!(
        "Reduction vs A100 TDP: {:.1}%",
        100.0 * (1.0 - power / 400.0)
    );
}

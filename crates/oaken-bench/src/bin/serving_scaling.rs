//! Serving-scaling benchmark: aggregate tokens/sec of the *executed*
//! continuous-batching engine (`oaken-serving`'s `BatchEngine` over the
//! shared `PagedKvPool`) swept over batch size and pool capacity — the
//! measured counterpart of the analytic Figure 11/14 curves (and the
//! committed `BENCH_serving.json` baseline).
//!
//! Four sweeps:
//!
//! 1. **Batch sweep** — a fixed request set replayed at growing `max_batch`.
//!    The engine's layer-major forward pass dots each weight row against
//!    the whole batch in one sweep (`Tensor::matvec_batch`), so the row
//!    load is amortized and the independent accumulator chains pipeline —
//!    aggregate tokens/sec must rise with batch, exactly like a GEMV
//!    widened into a GEMM on real hardware.
//! 2. **Capacity sweep** — fixed batch over a shrinking page pool,
//!    measuring admission stalls and preemptions as capacity bites (the
//!    executed version of the Figure 4/11 OOM story).
//! 3. **Prefix-overlap sweep** — a shared-system-prompt trace at 0%, 50%,
//!    and 100% prompt overlap, on an ample and a tight pool: trie hits
//!    skip prefill work (higher tok/s, lower time-to-first-token),
//!    deduplicated pages admit more concurrency under pressure (fewer
//!    admission stalls).
//! 4. **Thread sweep** — the largest batch re-run at 1/2/4/8 engine
//!    threads (`EngineConfig::num_threads`, the deterministic fork-join
//!    runtime). Output is bit-exact across the sweep; only the clock
//!    moves, and only as far as the host's physical cores allow (the
//!    committed JSON records the host's `available_parallelism`).
//! 5. **Preemption-policy sweep** — the tightest capacity point re-run
//!    under `RestartRecompute` vs `SwapToHost`: recomputed prefill
//!    tokens vs bytes swapped, tok/s, and mean TTFT. Quantized pages
//!    make the swapped bytes 3-4× smaller than FP16 would move, which is
//!    why suspend/resume beats evict-and-recompute here.
//! 6. **Kernel sweep** — the main workload re-run at `KernelMode::Exact`
//!    vs `KernelMode::Fused`: aggregate tokens/sec plus the pool's KV
//!    read counters. The fused engine must touch only encoded rows (zero
//!    exact-view reads) and its resident read traffic per row must be
//!    well under half the exact path's f32 bytes — the read-path face of
//!    the storage win.
//! 7. **Fault-degradation sweep** — the main workload re-run under
//!    deterministic fault injection at growing rates (‰ of fallible
//!    pool operations): tokens/sec and request completion rate as the
//!    containment layer retries, demotes, and quarantines. Every
//!    injected fault must be absorbed (no panics, no leaks) at every
//!    rate — the graceful-degradation curve of the robustness PR.
//! 8. **Rank sweep** — the main workload re-run tensor-parallel at
//!    1/2/4/8 engine ranks (`EngineConfig::num_ranks`): private per-rank
//!    KV pool shards, rank-sharded forward passes, a deterministic
//!    all-reduce. Every rank count must generate the identical token
//!    streams (asserted), the all-reduce bytes per token must grow with
//!    the rank count (the communication cost the sweep records), and
//!    the per-rank page peaks show the shard-level memory balance.
//! 9. **Open-loop sweep** — the main workload driven through the
//!    `oaken-service` streaming frontend on seeded open-loop arrival
//!    schedules at growing arrival rates (plus one bursty point):
//!    p50/p95/p99/max time-to-first-token and inter-token latency in
//!    service-clock ticks. The latencies are exact functions of the
//!    seed, and every point asserts the service determinism contract —
//!    delivered streams, delivery clocks, and aggregate engine stats
//!    bit-identical to the same schedule replayed directly against the
//!    engine.
//!
//! Usage: `cargo run --release -p oaken-bench --bin serving_scaling
//! [--smoke] [--threads N] [out.json]` — `--smoke` runs a tiny model for
//! 2 decode tokens per request (CI wiring); `--threads N` sets the engine
//! thread count for the batch/capacity/prefix sweeps (default 1, keeping
//! those curves comparable across hosts); the default workload writes the
//! committed baseline.

use oaken_bench::{banner, f, row};
use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{KernelMode, Model, ModelConfig, PagedKvPool};
use oaken_service::{
    arrival_schedule, replay_open_loop_direct, serve, LatencyRecorder, OpenLoopSpec, Percentiles,
};
use oaken_serving::{
    AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, EngineStats, FaultPlan,
    PreemptPolicy, Request, TokenScheduler,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Workload {
    model: Model,
    quantizer: Arc<dyn KvQuantizer>,
    requests: Vec<EngineRequest>,
    batch_sweep: Vec<usize>,
    /// Page counts for the capacity sweep (ample first).
    capacity_sweep: Vec<u32>,
    ample_pages: u32,
    page_size: usize,
    repeats: usize,
    /// Prefix-overlap sweep: `(prompt_len, output_len)` of the
    /// shared-system-prompt trace, its block granularity, and the tight
    /// pool used for the admission-stall comparison.
    overlap_shape: (usize, usize),
    overlap_block_tokens: usize,
    overlap_tight_pages: u32,
    /// Engine thread counts for the thread sweep (largest batch).
    thread_sweep: Vec<usize>,
    /// Preemption-policy sweep: `(prompt_len, output_len)` of a
    /// decode-heavy workload whose streams outgrow their pages
    /// mid-decode (the main workload's 48-token outputs never overflow a
    /// 4 KiB page, so pressure there is all admission stalls and no
    /// preemption), and the pool that holds two such sequences at
    /// admission but not at full growth.
    preempt_shape: (usize, usize),
    preempt_pages: u32,
}

/// Profiles Oaken thresholds on the model's own KV distribution (offline
/// phase, shared with the Table 2 harness).
fn profile(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 4, 8, 11))
}

fn requests(n: usize, input_len: usize, output_len: usize) -> Vec<EngineRequest> {
    (0..n as u64)
        .map(|id| {
            EngineRequest::from_lengths(
                &Request {
                    id,
                    input_len,
                    output_len,
                },
                256,
                0xBEEF,
            )
        })
        .collect()
}

/// A shared-system-prompt trace: every request starts with the identical
/// `shared`-token prefix, the rest is request-unique.
fn shared_requests(
    n: usize,
    input_len: usize,
    output_len: usize,
    shared: usize,
) -> Vec<EngineRequest> {
    (0..n as u64)
        .map(|id| {
            EngineRequest::from_lengths_with_shared_prefix(
                &Request {
                    id,
                    input_len,
                    output_len,
                },
                256,
                0xBEEF,
                shared,
            )
        })
        .collect()
}

fn workload(smoke: bool) -> Workload {
    if smoke {
        let model = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 11);
        let quantizer = profile(&model);
        Workload {
            requests: requests(4, 4, 2),
            batch_sweep: vec![1, 2],
            capacity_sweep: vec![256, 72],
            ample_pages: 256,
            page_size: 512,
            model,
            quantizer,
            repeats: 1,
            overlap_shape: (12, 2),
            overlap_block_tokens: 8,
            overlap_tight_pages: 256,
            thread_sweep: vec![1, 2],
            preempt_shape: (4, 2),
            preempt_pages: 72,
        }
    } else {
        // Sized so the per-layer weights (~28 MB) dwarf the private
        // caches: single-sequence decode is bound by streaming weight rows
        // through one serial dot chain, which is exactly what the batched
        // matvec amortizes.
        let model = Model::synthetic(ModelConfig::llama2_7b().proxy(4, 768), 11);
        let quantizer = profile(&model);
        Workload {
            requests: requests(8, 16, 48),
            batch_sweep: vec![1, 2, 4, 8],
            capacity_sweep: vec![2048, 512, 384, 256],
            ample_pages: 2048,
            page_size: 4096,
            model,
            quantizer,
            repeats: 3,
            overlap_shape: (128, 16),
            overlap_block_tokens: 32,
            overlap_tight_pages: 768,
            thread_sweep: vec![1, 2, 4, 8],
            // ~68 rows fill one 4 KiB dense page per head at this
            // geometry, so 135-token sequences double their dense pages
            // mid-decode: two admit into 320 pages (~128-page floor
            // each), growth to ~192 pages each then forces preemption of
            // loaded victims — restart recomputes, swap moves bytes.
            preempt_shape: (16, 120),
            preempt_pages: 320,
        }
    }
}

struct Measurement {
    tokens_per_sec: f64,
    stats: EngineStats,
}

fn run_once(w: &Workload, max_batch: usize, pages: u32, num_threads: usize) -> Measurement {
    run_once_policy(
        w,
        &w.requests,
        max_batch,
        pages,
        num_threads,
        PreemptPolicy::RestartRecompute,
    )
    .0
}

/// One engine run of `reqs` under an explicit preemption policy (the
/// batch / capacity / prefix / thread sweeps pin `RestartRecompute` so
/// their curves stay comparable with the committed PR 2-4 baselines
/// regardless of the `OAKEN_PREEMPT` env knob). Also returns the mean
/// TTFT in iterations.
fn run_once_policy(
    w: &Workload,
    reqs: &[EngineRequest],
    max_batch: usize,
    pages: u32,
    num_threads: usize,
    preempt: PreemptPolicy,
) -> (Measurement, f64) {
    let pool = PagedKvPool::for_model(
        w.model.config(),
        Some(w.quantizer.clone()),
        pages,
        w.page_size,
    );
    let mut engine = BatchEngine::new(
        &w.model,
        pool,
        TokenScheduler::new(max_batch.max(1)),
        EngineConfig {
            max_batch,
            admission: AdmissionPolicy::PromptOnly,
            preempt,
            record_logits: false,
            prefill_token_budget: 16,
            num_threads,
            ..EngineConfig::default()
        },
    );
    for r in reqs {
        engine.submit(r.clone());
    }
    let start = Instant::now();
    engine.run();
    let secs = start.elapsed().as_secs_f64();
    let stats = engine.stats().clone();
    assert_eq!(
        stats.retired as usize,
        reqs.len(),
        "every request must complete (pages {pages}, batch {max_batch})"
    );
    let mean_ttft = engine
        .finished()
        .iter()
        .map(|f| f.ttft_iteration as f64)
        .sum::<f64>()
        / reqs.len() as f64;
    (
        Measurement {
            tokens_per_sec: stats.decode_tokens as f64 / secs,
            stats,
        },
        mean_ttft,
    )
}

struct OverlapMeasurement {
    tokens_per_sec: f64,
    mean_ttft_iters: f64,
    stats: EngineStats,
    stalls_tight: u64,
}

/// One point of the prefix-overlap sweep: 8 requests over a shared system
/// prompt covering `overlap_pct` of the input. Request 0 is submitted
/// first and the rest arrive the moment its prefill completes (while it
/// still holds its sealed blocks), so later requests exercise alloc-time
/// trie hits — the cache-hot steady state of a shared-prompt service.
/// Runs on the ample pool for throughput/TTFT and on the tight pool for
/// the admission-stall comparison.
fn run_overlap(w: &Workload, overlap_pct: usize, num_threads: usize) -> OverlapMeasurement {
    let (input_len, output_len) = w.overlap_shape;
    let shared = input_len * overlap_pct / 100;
    let reqs = shared_requests(8, input_len, output_len, shared);
    let run = |pages: u32| -> (f64, EngineStats, f64) {
        let mut pool = PagedKvPool::for_model(
            w.model.config(),
            Some(w.quantizer.clone()),
            pages,
            w.page_size,
        );
        pool.set_block_tokens(w.overlap_block_tokens);
        let mut engine = BatchEngine::new(
            &w.model,
            pool,
            TokenScheduler::new(8),
            EngineConfig {
                max_batch: 8,
                admission: AdmissionPolicy::PromptOnly,
                preempt: PreemptPolicy::RestartRecompute,
                record_logits: false,
                prefill_token_budget: 16,
                num_threads,
                ..EngineConfig::default()
            },
        );
        let mut it = reqs.iter().cloned();
        let start = Instant::now();
        engine.submit(it.next().expect("8 requests"));
        while engine.stats().decode_tokens == 0 && engine.step() {}
        for r in it {
            engine.submit(r);
        }
        engine.run();
        let secs = start.elapsed().as_secs_f64();
        let stats = engine.stats().clone();
        assert_eq!(
            stats.retired as usize,
            reqs.len(),
            "every request must complete (pages {pages}, overlap {overlap_pct}%)"
        );
        let mean_ttft = engine
            .finished()
            .iter()
            .map(|f| f.ttft_iteration as f64)
            .sum::<f64>()
            / reqs.len() as f64;
        (stats.decode_tokens as f64 / secs, stats, mean_ttft)
    };
    let (mut tokens_per_sec, mut stats, mut mean_ttft_iters) = run(w.ample_pages);
    for _ in 1..w.repeats {
        let (tps, s, ttft) = run(w.ample_pages);
        if tps > tokens_per_sec {
            (tokens_per_sec, stats, mean_ttft_iters) = (tps, s, ttft);
        }
    }
    let (_, tight_stats, _) = run(w.overlap_tight_pages);
    OverlapMeasurement {
        tokens_per_sec,
        mean_ttft_iters,
        stats,
        stalls_tight: tight_stats.admission_stalls,
    }
}

/// One engine run under fault injection: returns throughput, how many
/// requests still completed, and the containment counters. No
/// completion assertion — losing requests (gracefully) is the point.
fn run_faulty(
    w: &Workload,
    max_batch: usize,
    pages: u32,
    num_threads: usize,
    rate_permille: u16,
) -> (f64, usize, EngineStats) {
    let pool = PagedKvPool::for_model(
        w.model.config(),
        Some(w.quantizer.clone()),
        pages,
        w.page_size,
    );
    let mut engine = BatchEngine::new(
        &w.model,
        pool,
        TokenScheduler::new(max_batch.max(1)),
        EngineConfig {
            max_batch,
            admission: AdmissionPolicy::PromptOnly,
            preempt: PreemptPolicy::SwapToHost,
            record_logits: false,
            prefill_token_budget: 16,
            num_threads,
            fault_plan: (rate_permille > 0)
                .then(|| FaultPlan::new(0xFA11).with_rate_permille(rate_permille)),
            ..EngineConfig::default()
        },
    );
    for r in &w.requests {
        engine.submit(r.clone());
    }
    let start = Instant::now();
    engine.run();
    let secs = start.elapsed().as_secs_f64();
    let stats = engine.stats().clone();
    let completed = engine.finished().iter().filter(|f| f.completed).count();
    assert_eq!(
        engine.finished().len(),
        w.requests.len(),
        "every request must reach a terminal state (rate {rate_permille}permille)"
    );
    assert_eq!(
        stats.faults_absorbed, stats.faults_injected,
        "every injected fault must be absorbed (rate {rate_permille}permille)"
    );
    (stats.decode_tokens as f64 / secs, completed, stats)
}

/// One tensor-parallel engine run: returns the measurement plus every
/// request's generated token stream (sorted by id) so the sweep can
/// assert N-rank output equals 1-rank output. Single run per point —
/// the asserted quantities are deterministic.
fn run_ranked(
    w: &Workload,
    max_batch: usize,
    pages: u32,
    num_threads: usize,
    num_ranks: usize,
) -> (Measurement, Vec<Vec<u32>>) {
    let pool = PagedKvPool::for_model(
        w.model.config(),
        Some(w.quantizer.clone()),
        pages,
        w.page_size,
    );
    let mut engine = BatchEngine::new(
        &w.model,
        pool,
        TokenScheduler::new(max_batch.max(1)),
        EngineConfig {
            max_batch,
            admission: AdmissionPolicy::PromptOnly,
            preempt: PreemptPolicy::RestartRecompute,
            record_logits: false,
            prefill_token_budget: 16,
            num_threads,
            num_ranks,
            ..EngineConfig::default()
        },
    );
    assert_eq!(
        engine.num_ranks(),
        num_ranks,
        "rank request must be honored"
    );
    for r in &w.requests {
        engine.submit(r.clone());
    }
    let start = Instant::now();
    engine.run();
    let secs = start.elapsed().as_secs_f64();
    let stats = engine.stats().clone();
    assert_eq!(
        stats.retired as usize,
        w.requests.len(),
        "every request must complete ({num_ranks} ranks)"
    );
    let mut fin = engine.finished().to_vec();
    fin.sort_by_key(|f| f.id);
    let streams = fin.into_iter().map(|f| f.generated).collect();
    (
        Measurement {
            tokens_per_sec: stats.decode_tokens as f64 / secs,
            stats,
        },
        streams,
    )
}

struct OpenLoopPoint {
    tokens_per_sec: f64,
    /// Final service clock (engine iterations plus open-loop idle gaps).
    clock: u64,
    ttft: Percentiles,
    itl: Percentiles,
    itl_samples: usize,
    last_arrival: u64,
}

/// One point of the open-loop sweep: the main workload submitted through
/// the streaming service frontend on a seeded arrival schedule, latencies
/// measured in service-clock ticks. Asserts the service determinism
/// contract — streams, delivery clocks, and aggregate stats bit-identical
/// to the direct engine replay of the same schedule — before reporting
/// anything. Single run per point: every reported latency is an exact
/// function of the seed, only tokens/sec rides the wall clock.
fn run_open_loop(
    w: &Workload,
    max_batch: usize,
    pages: u32,
    num_threads: usize,
    mean_interarrival: f64,
    burst: Option<usize>,
) -> OpenLoopPoint {
    let cfg = EngineConfig {
        max_batch,
        admission: AdmissionPolicy::PromptOnly,
        preempt: PreemptPolicy::RestartRecompute,
        record_logits: false,
        prefill_token_budget: 16,
        num_threads,
        ..EngineConfig::default()
    };
    let spec = match burst {
        Some(b) => OpenLoopSpec::bursty(mean_interarrival, b, 0x0A11),
        None => OpenLoopSpec::poisson(mean_interarrival, 0x0A11),
    };
    let arrivals = arrival_schedule(&spec, w.requests.len());
    let last_arrival = arrivals.last().copied().unwrap_or(0);
    let schedule: Vec<(EngineRequest, u64)> = w.requests.iter().cloned().zip(arrivals).collect();
    let make_pool = || {
        PagedKvPool::for_model(
            w.model.config(),
            Some(w.quantizer.clone()),
            pages,
            w.page_size,
        )
    };

    let start = Instant::now();
    let (results, report) = serve(
        &w.model,
        make_pool(),
        TokenScheduler::new(max_batch.max(1)),
        cfg,
        |client| {
            let handles = client.submit_schedule(schedule.iter().cloned());
            handles.into_iter().map(|h| h.wait()).collect::<Vec<_>>()
        },
    );
    let secs = start.elapsed().as_secs_f64();

    // The determinism contract, asserted at every sweep point.
    let replay = replay_open_loop_direct(
        &w.model,
        make_pool(),
        TokenScheduler::new(max_batch.max(1)),
        cfg,
        schedule.clone(),
        &[],
    );
    let mut recorder = LatencyRecorder::new();
    for res in &results {
        let timing = replay.timing_for(res.id);
        assert_eq!(
            res.tokens, timing.tokens,
            "service stream != direct replay (request {}, mean {mean_interarrival})",
            res.id
        );
        assert_eq!(
            res.token_clocks, timing.token_clocks,
            "delivery clocks != direct replay (request {}, mean {mean_interarrival})",
            res.id
        );
        recorder.record("open_loop", timing.arrival, &res.token_clocks);
    }
    assert_eq!(
        report.stats, replay.stats,
        "service stats != direct replay stats (mean {mean_interarrival})"
    );
    assert_eq!(
        report.stats.retired as usize,
        w.requests.len(),
        "every request must complete (mean {mean_interarrival})"
    );
    assert!(
        report.drained_empty(),
        "pool residue (mean {mean_interarrival}): {:?}",
        report.drain
    );
    let class = recorder.report().pop().expect("one recorded class");
    OpenLoopPoint {
        tokens_per_sec: report.stats.decode_tokens as f64 / secs.max(1e-9),
        clock: report.clock,
        ttft: class.ttft,
        itl: class.itl,
        itl_samples: class.itl_samples,
        last_arrival,
    }
}

/// Best-of-N to suppress scheduler noise (counters are identical across
/// repeats — the engine is deterministic — so only the clock varies).
fn run_config(w: &Workload, max_batch: usize, pages: u32, num_threads: usize) -> Measurement {
    let mut best = run_once(w, max_batch, pages, num_threads);
    for _ in 1..w.repeats {
        let m = run_once(w, max_batch, pages, num_threads);
        if m.tokens_per_sec > best.tokens_per_sec {
            best = m;
        }
    }
    best
}

/// One engine run with an explicitly pinned attention kernel (the other
/// sweeps inherit the `OAKEN_KERNEL` env default so their curves track
/// whatever mode CI exercises).
fn run_kernel(
    w: &Workload,
    max_batch: usize,
    pages: u32,
    num_threads: usize,
    kernel: KernelMode,
) -> Measurement {
    let run = || {
        let pool = PagedKvPool::for_model(
            w.model.config(),
            Some(w.quantizer.clone()),
            pages,
            w.page_size,
        );
        let mut engine = BatchEngine::new(
            &w.model,
            pool,
            TokenScheduler::new(max_batch.max(1)),
            EngineConfig {
                max_batch,
                admission: AdmissionPolicy::PromptOnly,
                preempt: PreemptPolicy::RestartRecompute,
                record_logits: false,
                prefill_token_budget: 16,
                num_threads,
                kernel,
                ..EngineConfig::default()
            },
        );
        for r in &w.requests {
            engine.submit(r.clone());
        }
        let start = Instant::now();
        engine.run();
        let secs = start.elapsed().as_secs_f64();
        let stats = engine.stats().clone();
        assert_eq!(
            stats.retired as usize,
            w.requests.len(),
            "every request must complete (kernel {})",
            kernel.label()
        );
        Measurement {
            tokens_per_sec: stats.decode_tokens as f64 / secs,
            stats,
        }
    };
    let mut best = run();
    for _ in 1..w.repeats {
        let m = run();
        if m.tokens_per_sec > best.tokens_per_sec {
            best = m;
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or(1);
    assert!(threads > 0, "--threads takes a positive integer");
    let out_path = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !a.starts_with("--")
                && !matches!(args.get(i.wrapping_sub(1)), Some(p) if p == "--threads")
        })
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "BENCH_serving.json".to_owned());
    let w = workload(smoke);

    banner(
        "serving_scaling",
        "continuous-batching engine over the shared paged quantized KV pool",
    );
    println!(
        "model: {} ({} layers, d={}, kv_dim={}), {} requests of {}:{} tokens\n",
        w.model.config().name,
        w.model.config().num_layers,
        w.model.config().d_model,
        w.model.config().kv_dim(),
        w.requests.len(),
        w.requests[0].prompt.len(),
        w.requests[0].max_new_tokens,
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n  \"bench\": \"serving_scaling\",\n");
    let _ = writeln!(
        json,
        "  \"model\": \"{}\",\n  \"requests\": {},\n  \"smoke\": {smoke},\n  \
         \"num_threads\": {threads},\n  \"host_available_parallelism\": {host_cores},",
        w.model.config().name,
        w.requests.len()
    );

    // --- Batch sweep (ample pool) ---------------------------------------
    println!("batch sweep (pool {} pages):", w.ample_pages);
    let widths = [6, 12, 12, 10, 12];
    row(&[&"batch", &"tok/s", &"iters", &"stalls", &"util"], &widths);
    json.push_str("  \"batch_sweep\": [\n");
    let mut prev_tps = 0.0f64;
    let mut monotonic = true;
    let mut iters_decreasing = true;
    let mut prev_iters = u64::MAX;
    for (i, &batch) in w.batch_sweep.iter().enumerate() {
        let m = run_config(&w, batch, w.ample_pages, threads);
        // Wall-clock throughput on a host pinned to one CPU saturates by
        // batch 4 and then wobbles a few percent run to run (rebuilding
        // the pre-fault tree and rerunning it reproduces the same wobble),
        // so demand each point reach 90% of its predecessor; the
        // deterministic face of the batching win — strictly fewer engine
        // iterations as batch grows — is asserted exactly.
        monotonic &= m.tokens_per_sec >= prev_tps * 0.90;
        prev_tps = m.tokens_per_sec;
        iters_decreasing &= m.stats.iterations < prev_iters;
        prev_iters = m.stats.iterations;
        row(
            &[
                &batch,
                &f(m.tokens_per_sec, 1),
                &m.stats.iterations,
                &m.stats.admission_stalls,
                &f(m.stats.mean_core_utilization(), 2),
            ],
            &widths,
        );
        let _ = write!(
            json,
            "    {{\"batch\": {batch}, \"tokens_per_sec\": {:.1}, \"iterations\": {}, \"admission_stalls\": {}}}",
            m.tokens_per_sec, m.stats.iterations, m.stats.admission_stalls
        );
        json.push_str(if i + 1 < w.batch_sweep.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"batch_monotonic\": {monotonic},");
    println!("aggregate tokens/sec monotonic in batch: {monotonic}\n");

    // --- Capacity sweep (largest batch) ---------------------------------
    let batch = *w.batch_sweep.last().expect("non-empty sweep");
    println!("capacity sweep (batch {batch}):");
    let cwidths = [8, 12, 10, 12, 8];
    row(
        &[&"pages", &"tok/s", &"stalls", &"preempts", &"active"],
        &cwidths,
    );
    json.push_str("  \"capacity_sweep\": [\n");
    for (i, &pages) in w.capacity_sweep.iter().enumerate() {
        let m = run_config(&w, batch, pages, threads);
        row(
            &[
                &pages,
                &f(m.tokens_per_sec, 1),
                &m.stats.admission_stalls,
                &m.stats.preemptions,
                &m.stats.peak_active,
            ],
            &cwidths,
        );
        let _ = write!(
            json,
            "    {{\"pages\": {pages}, \"tokens_per_sec\": {:.1}, \"admission_stalls\": {}, \"preemptions\": {}, \"peak_active\": {}}}",
            m.tokens_per_sec, m.stats.admission_stalls, m.stats.preemptions, m.stats.peak_active
        );
        json.push_str(if i + 1 < w.capacity_sweep.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");

    // --- Prefix-overlap sweep -------------------------------------------
    let (plen, olen) = w.overlap_shape;
    println!(
        "\nprefix-overlap sweep (8 requests of {plen}:{olen}, block {} tokens, tight pool {} pages):",
        w.overlap_block_tokens, w.overlap_tight_pages
    );
    let owidths = [9, 10, 12, 11, 12, 13, 13];
    row(
        &[
            &"overlap",
            &"tok/s",
            &"ttft_iters",
            &"trie_hits",
            &"reused_tok",
            &"dedup_bytes",
            &"tight_stalls",
        ],
        &owidths,
    );
    json.push_str("  \"prefix_sweep\": [\n");
    let overlaps = [0usize, 50, 100];
    let mut stalls_by_overlap = Vec::new();
    let mut ttft_by_overlap = Vec::new();
    for (i, &pct) in overlaps.iter().enumerate() {
        let m = run_overlap(&w, pct, threads);
        stalls_by_overlap.push(m.stalls_tight);
        ttft_by_overlap.push(m.mean_ttft_iters);
        row(
            &[
                &format!("{pct}%"),
                &f(m.tokens_per_sec, 1),
                &f(m.mean_ttft_iters, 1),
                &m.stats.prefix.trie_hits,
                &m.stats.prefix.tokens_reused,
                &m.stats.prefix.bytes_deduplicated,
                &m.stalls_tight,
            ],
            &owidths,
        );
        let _ = write!(
            json,
            "    {{\"overlap_pct\": {pct}, \"tokens_per_sec\": {:.1}, \"mean_ttft_iterations\": {:.1}, \
             \"trie_hits\": {}, \"tokens_reused\": {}, \"bytes_deduplicated\": {}, \
             \"shared_pages_peak\": {}, \"admission_stalls_tight_pool\": {}}}",
            m.tokens_per_sec,
            m.mean_ttft_iters,
            m.stats.prefix.trie_hits,
            m.stats.prefix.tokens_reused,
            m.stats.prefix.bytes_deduplicated,
            m.stats.shared_pages_peak,
            m.stalls_tight
        );
        json.push_str(if i + 1 < overlaps.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // --- Thread sweep (largest batch, ample pool) ------------------------
    println!(
        "\nthread sweep (batch {batch}, pool {} pages, host cores {host_cores}):",
        w.ample_pages
    );
    let twidths = [8, 12, 12, 10];
    row(&[&"threads", &"tok/s", &"speedup", &"iters"], &twidths);
    json.push_str("  \"thread_sweep\": [\n");
    let mut base_tps = 0.0f64;
    for (i, &t) in w.thread_sweep.iter().enumerate() {
        let m = run_config(&w, batch, w.ample_pages, t);
        if i == 0 {
            base_tps = m.tokens_per_sec;
        }
        let speedup = m.tokens_per_sec / base_tps.max(1e-12);
        row(
            &[
                &t,
                &f(m.tokens_per_sec, 1),
                &format!("{:.2}x", speedup),
                &m.stats.iterations,
            ],
            &twidths,
        );
        let _ = write!(
            json,
            "    {{\"threads\": {t}, \"tokens_per_sec\": {:.1}, \"speedup_vs_1\": {:.2}}}",
            m.tokens_per_sec, speedup
        );
        json.push_str(if i + 1 < w.thread_sweep.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");

    // --- Preemption-policy sweep (decode-heavy workload, tight pool) -----
    let (pin, pout) = w.preempt_shape;
    let tight = w.preempt_pages;
    let preempt_reqs = requests(w.requests.len(), pin, pout);
    println!(
        "\npreemption-policy sweep ({} requests of {pin}:{pout}, batch {batch}, pool {tight} pages):",
        preempt_reqs.len()
    );
    let pwidths = [10, 10, 12, 11, 12, 13, 13];
    row(
        &[
            &"policy",
            &"tok/s",
            &"ttft_iters",
            &"preempts",
            &"recomputed",
            &"bytes_out",
            &"bytes_in",
        ],
        &pwidths,
    );
    json.push_str("  \"preempt_sweep\": [\n");
    let policies = [
        ("restart", PreemptPolicy::RestartRecompute),
        ("swap", PreemptPolicy::SwapToHost),
    ];
    let mut recompute_by_policy = Vec::new();
    let mut preempts_by_policy = Vec::new();
    for (i, &(name, policy)) in policies.iter().enumerate() {
        // One run per policy: the counters are deterministic (and the
        // asserted quantities), and the decode-heavy workload is the
        // slowest point of the whole bench.
        let (m, ttft) = run_once_policy(&w, &preempt_reqs, batch, tight, threads, policy);
        recompute_by_policy.push(m.stats.recomputed_prefill_tokens);
        preempts_by_policy.push(m.stats.preemptions);
        row(
            &[
                &name,
                &f(m.tokens_per_sec, 1),
                &f(ttft, 1),
                &m.stats.preemptions,
                &m.stats.recomputed_prefill_tokens,
                &m.stats.swap_bytes_to_host,
                &m.stats.swap_bytes_to_device,
            ],
            &pwidths,
        );
        let _ = write!(
            json,
            "    {{\"policy\": \"{name}\", \"pages\": {tight}, \"tokens_per_sec\": {:.1}, \
             \"mean_ttft_iterations\": {:.1}, \"preemptions\": {}, \
             \"recomputed_prefill_tokens\": {}, \"swap_outs\": {}, \"swap_ins\": {}, \
             \"swap_bytes_to_host\": {}, \"swap_bytes_to_device\": {}, \
             \"mean_resume_latency_iters\": {:.1}, \"prompt_len\": {pin}, \"output_len\": {pout}}}",
            m.tokens_per_sec,
            ttft,
            m.stats.preemptions,
            m.stats.recomputed_prefill_tokens,
            m.stats.swap_outs,
            m.stats.swap_ins,
            m.stats.swap_bytes_to_host,
            m.stats.swap_bytes_to_device,
            m.stats.mean_resume_latency(),
        );
        json.push_str(if i + 1 < policies.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // --- Kernel sweep (main workload, ample pool) ------------------------
    println!(
        "\nkernel sweep ({} requests, batch {batch}, pool {} pages):",
        w.requests.len(),
        w.ample_pages
    );
    let kwidths = [8, 10, 13, 13, 13, 13];
    row(
        &[
            &"kernel",
            &"tok/s",
            &"fused_rows",
            &"fused_bytes",
            &"exact_rows",
            &"exact_bytes",
        ],
        &kwidths,
    );
    json.push_str("  \"kernel_sweep\": [\n");
    let kernels = [("exact", KernelMode::Exact), ("fused", KernelMode::Fused)];
    let mut reads_by_kernel = Vec::new();
    for (i, &(name, kernel)) in kernels.iter().enumerate() {
        let m = run_kernel(&w, batch, w.ample_pages, threads, kernel);
        let r = m.stats.kv_reads;
        reads_by_kernel.push(r);
        row(
            &[
                &name,
                &f(m.tokens_per_sec, 1),
                &r.fused_rows,
                &r.fused_bytes,
                &r.exact_rows,
                &r.exact_bytes,
            ],
            &kwidths,
        );
        let _ = write!(
            json,
            "    {{\"kernel\": \"{name}\", \"tokens_per_sec\": {:.1}, \
             \"fused_rows_read\": {}, \"fused_bytes_read\": {}, \
             \"exact_rows_read\": {}, \"exact_bytes_read\": {}}}",
            m.tokens_per_sec, r.fused_rows, r.fused_bytes, r.exact_rows, r.exact_bytes
        );
        json.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // The fused engine never touches a dequantized view, the exact engine
    // never touches an encoded row, and both read the same rows — so the
    // byte ratio is the per-row read-traffic win.
    let (ex, fu) = (reads_by_kernel[0], reads_by_kernel[1]);
    assert_eq!(ex.fused_rows, 0, "exact engine must read no encoded rows");
    assert_eq!(fu.exact_rows, 0, "fused engine must read no f32 views");
    assert_eq!(
        fu.fused_rows, ex.exact_rows,
        "both kernels must read the same row schedule"
    );
    let bytes_ratio = fu.fused_bytes as f64 / (ex.exact_bytes as f64).max(1.0);
    assert!(
        bytes_ratio < 0.5,
        "fused read traffic must be well under half of exact ({bytes_ratio:.3})"
    );
    println!("fused/exact read bytes: {bytes_ratio:.3}\n");

    // --- Rank sweep (tensor-parallel, ample pool) ------------------------
    let rank_sweep: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    println!(
        "\nrank sweep ({} requests, batch {batch}, pool {} pages):",
        w.requests.len(),
        w.ample_pages
    );
    let rwidths = [7, 10, 10, 13, 24];
    row(
        &[
            &"ranks",
            &"tok/s",
            &"reduces",
            &"comm B/tok",
            &"rank page peaks",
        ],
        &rwidths,
    );
    json.push_str("  \"rank_sweep\": [\n");
    let mut streams_by_rank: Vec<Vec<Vec<u32>>> = Vec::new();
    let mut comm_bytes_by_rank: Vec<u64> = Vec::new();
    for (i, &ranks) in rank_sweep.iter().enumerate() {
        let (m, streams) = run_ranked(&w, batch, w.ample_pages, threads, ranks);
        let peaks = m.stats.rank_page_peaks.clone();
        row(
            &[
                &ranks,
                &f(m.tokens_per_sec, 1),
                &m.stats.comm.allreduce_calls,
                &f(m.stats.comm_bytes_per_token(), 1),
                &format!("{peaks:?}"),
            ],
            &rwidths,
        );
        let peaks_json = peaks
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            json,
            "    {{\"ranks\": {ranks}, \"tokens_per_sec\": {:.1}, \
             \"allreduce_calls\": {}, \"comm_bytes_moved\": {}, \
             \"comm_bytes_per_token\": {:.1}, \"rank_page_peaks\": [{peaks_json}]}}",
            m.tokens_per_sec,
            m.stats.comm.allreduce_calls,
            m.stats.comm.bytes_moved,
            m.stats.comm_bytes_per_token(),
        );
        json.push_str(if i + 1 < rank_sweep.len() {
            ",\n"
        } else {
            "\n"
        });
        assert_eq!(m.stats.rank_page_peaks.len(), ranks);
        assert!(
            peaks.iter().all(|&p| p > 0),
            "every rank shard must hold pages: {peaks:?}"
        );
        comm_bytes_by_rank.push(m.stats.comm.bytes_moved);
        streams_by_rank.push(streams);
    }
    json.push_str("  ],\n");
    // N-rank output is the 1-rank output, token for token; the price is
    // all-reduce traffic that grows with the rank count.
    for (i, &ranks) in rank_sweep.iter().enumerate().skip(1) {
        assert_eq!(
            streams_by_rank[i], streams_by_rank[0],
            "{ranks}-rank token streams must equal 1-rank"
        );
        assert!(
            comm_bytes_by_rank[i] > comm_bytes_by_rank[i - 1],
            "all-reduce bytes must grow with ranks: {comm_bytes_by_rank:?}"
        );
    }
    assert_eq!(comm_bytes_by_rank[0], 0, "1 rank moves no bytes");
    println!("token streams identical across rank counts; comm bytes {comm_bytes_by_rank:?}\n");

    // --- Fault-degradation sweep (main workload, ample pool) -------------
    let fault_rates: &[u16] = if smoke { &[0, 100] } else { &[0, 25, 100, 250] };
    println!(
        "\nfault-degradation sweep ({} requests, batch {batch}, pool {} pages, seed 0xFA11):",
        w.requests.len(),
        w.ample_pages
    );
    let fwidths = [10, 10, 12, 10, 10, 10, 11];
    row(
        &[
            &"rate",
            &"tok/s",
            &"completed",
            &"injected",
            &"retries",
            &"demotions",
            &"restarts",
        ],
        &fwidths,
    );
    json.push_str("  \"fault_sweep\": [\n");
    let mut completed_by_rate = Vec::new();
    for (i, &rate) in fault_rates.iter().enumerate() {
        let (tps, completed, s) = run_faulty(&w, batch, w.ample_pages, threads, rate);
        completed_by_rate.push(completed);
        row(
            &[
                &format!("{rate}/1000"),
                &f(tps, 1),
                &format!("{completed}/{}", w.requests.len()),
                &s.faults_injected,
                &s.fault_retries,
                &s.demotions,
                &s.resume_restarts,
            ],
            &fwidths,
        );
        let _ = write!(
            json,
            "    {{\"rate_permille\": {rate}, \"tokens_per_sec\": {tps:.1}, \
             \"completed\": {completed}, \"submitted\": {}, \
             \"faults_injected\": {}, \"faults_absorbed\": {}, \
             \"fault_retries\": {}, \"demotions\": {}, \"failed\": {}}}",
            w.requests.len(),
            s.faults_injected,
            s.faults_absorbed,
            s.fault_retries,
            s.demotions,
            s.failed,
        );
        json.push_str(if i + 1 < fault_rates.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");

    // --- Open-loop sweep (service frontend, ample pool) -------------------
    // `(mean_interarrival, burst)` points, sparse to saturated, plus one
    // bursty schedule at the middle rate.
    let open_loop_points: &[(f64, Option<usize>)] = if smoke {
        &[(4.0, None), (2.0, Some(2))]
    } else {
        &[(16.0, None), (4.0, None), (1.0, None), (4.0, Some(4))]
    };
    println!(
        "\nopen-loop sweep ({} requests through the service frontend, batch {batch}, pool {} pages, seed 0x0A11):",
        w.requests.len(),
        w.ample_pages
    );
    let lwidths = [14, 10, 9, 20, 20];
    row(
        &[
            &"arrivals",
            &"tok/s",
            &"clock",
            &"ttft p50/p95/p99",
            &"itl p50/p95/p99",
        ],
        &lwidths,
    );
    json.push_str("  \"open_loop_sweep\": [\n");
    let mut ttft_p95_by_rate = Vec::new();
    for (i, &(mean, burst)) in open_loop_points.iter().enumerate() {
        let p = run_open_loop(&w, batch, w.ample_pages, threads, mean, burst);
        if burst.is_none() {
            ttft_p95_by_rate.push(p.ttft.p95);
        }
        let kind = match burst {
            Some(b) => format!("bursty x{b}"),
            None => "poisson".to_string(),
        };
        row(
            &[
                &format!("{kind} @{:.2}", 1.0 / mean),
                &f(p.tokens_per_sec, 1),
                &p.clock,
                &format!("{}/{}/{}", p.ttft.p50, p.ttft.p95, p.ttft.p99),
                &format!("{}/{}/{}", p.itl.p50, p.itl.p95, p.itl.p99),
            ],
            &lwidths,
        );
        let _ = write!(
            json,
            "    {{\"kind\": \"{}\", \"burst\": {}, \"mean_interarrival_ticks\": {mean:.1}, \
             \"arrival_rate_per_tick\": {:.4}, \"last_arrival_tick\": {}, \
             \"service_clock\": {}, \"tokens_per_sec\": {:.1}, \
             \"ttft_ticks\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \
             \"itl_ticks\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \
             \"itl_samples\": {}, \"service_matches_direct_replay\": true}}",
            if burst.is_some() { "bursty" } else { "poisson" },
            burst.unwrap_or(1),
            1.0 / mean,
            p.last_arrival,
            p.clock,
            p.tokens_per_sec,
            p.ttft.p50,
            p.ttft.p95,
            p.ttft.p99,
            p.ttft.max,
            p.itl.p50,
            p.itl.p95,
            p.itl.p99,
            p.itl.max,
            p.itl_samples,
        );
        json.push_str(if i + 1 < open_loop_points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    // Queueing must show up in the tail: the saturated arrival rate cannot
    // beat the sparse one on p95 TTFT (exact tick counts, no timer noise).
    assert!(
        ttft_p95_by_rate.last() >= ttft_p95_by_rate.first(),
        "saturated arrivals must not lower tail TTFT: {ttft_p95_by_rate:?}"
    );

    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
    // Sub-millisecond smoke runs are pure timer noise; the scaling claims
    // are only meaningful (and enforced) on the real workload.
    assert!(
        smoke || monotonic,
        "aggregate tokens/sec must rise monotonically with batch (10% timer-noise tolerance)"
    );
    assert!(
        iters_decreasing,
        "engine iterations must strictly decrease as batch grows"
    );
    assert!(
        smoke || stalls_by_overlap[2] < stalls_by_overlap[0],
        "100% prompt overlap must stall strictly less than 0% on the tight pool: {stalls_by_overlap:?}"
    );
    assert!(
        smoke || stalls_by_overlap[1] <= stalls_by_overlap[0],
        "50% overlap must not stall more than 0%: {stalls_by_overlap:?}"
    );
    assert!(
        smoke || ttft_by_overlap[2] < ttft_by_overlap[0],
        "full prefix reuse must lower mean TTFT: {ttft_by_overlap:?}"
    );
    // The acceptance claim of the two-tier refactor: on the same tight
    // pool, restart pays a recompute bill and swap pays none.
    assert!(
        smoke || preempts_by_policy[0] > 0,
        "the tight pool must force preemption under restart: {preempts_by_policy:?}"
    );
    assert!(
        smoke || recompute_by_policy[0] > 0,
        "restart preemption must recompute prefill tokens: {recompute_by_policy:?}"
    );
    assert_eq!(
        recompute_by_policy[1], 0,
        "swap preemption must recompute nothing: {recompute_by_policy:?}"
    );
    // Graceful degradation: the fault-free point of the sweep completes
    // everything, and no fault rate may crash or wedge the run (already
    // enforced per-point inside run_faulty).
    assert_eq!(
        completed_by_rate[0],
        w.requests.len(),
        "zero fault rate must complete every request: {completed_by_rate:?}"
    );
}

//! Figure 5: (a) memory usage breakdown (weights vs KV cache) of
//! Llama2-13B as batch grows; (b) throughput of no-quantization vs
//! weight-only INT4 vs KV-cache INT4 on the LPDDR-NPU.

use oaken_accel::{AcceleratorSpec, QuantPolicy, SystemModel, Workload};
use oaken_bench::{banner, f, row};
use oaken_model::ModelConfig;

fn main() {
    let model = ModelConfig::llama2_13b();
    banner(
        "Figure 5(a)",
        "Llama2-13B memory requirement by batch (2K tokens)",
    );
    row(
        &[&"batch", &"weights (GB)", &"KV cache (GB)", &"KV share (%)"],
        &[6, 13, 14, 13],
    );
    let weights_gb = model.weight_bytes(16.0) as f64 / 1e9;
    for b in [1usize, 8, 16, 32, 64, 128, 256] {
        let kv_gb = (b as u64 * 2048 * model.kv_bytes_per_token(16.0)) as f64 / 1e9;
        row(
            &[
                &b,
                &f(weights_gb, 1),
                &f(kv_gb, 1),
                &f(100.0 * kv_gb / (kv_gb + weights_gb), 1),
            ],
            &[6, 13, 14, 13],
        );
    }
    println!("\nExpected shape: KV cache grows linearly with batch and");
    println!("dominates memory (89-94%) from batch 64 up (paper: 89%/94%).\n");

    banner(
        "Figure 5(b)",
        "throughput: no quant vs weight-INT4 vs KV-INT4 (LPDDR-NPU, 1K:1K)",
    );
    row(
        &[&"batch", &"w/o quant", &"weight INT4", &"KV INT4"],
        &[6, 12, 12, 12],
    );
    let mk = |p: QuantPolicy| SystemModel::new(AcceleratorSpec::lpddr_npu(), p);
    let none = mk(QuantPolicy::fp16());
    let wq = mk(QuantPolicy::weight_only_int4());
    let kvq = mk(QuantPolicy::kv_int4_plain());
    for b in [8usize, 16, 32, 64, 128, 256] {
        let w = Workload::one_k_one_k(b);
        row(
            &[
                &b,
                &f(none.run(&model, &w).throughput, 0),
                &f(wq.run(&model, &w).throughput, 0),
                &f(kvq.run(&model, &w).throughput, 0),
            ],
            &[6, 12, 12, 12],
        );
    }
    println!();
    println!("Expected shape: weight-only quantization gains little at large");
    println!("batch (weights are read once per iteration and amortized);");
    println!("KV quantization keeps scaling throughput (paper Figure 5b).");
}

//! Cluster-scaling benchmark: the disaggregated prefill/decode cluster
//! (`oaken-cluster`) swept over replica count, transfer-link bandwidth,
//! and prefix overlap — the measured counterpart of the committed
//! `BENCH_cluster.json` baseline. Every latency in this bench is a
//! service-clock tick count (an exact function of the schedule and the
//! config), so the asserted claims carry zero timer noise; only the
//! wall-clock tokens/sec column rides the host.
//!
//! Four sweeps:
//!
//! 1. **Replica sweep** — a 3-family shared-prefix schedule at 1/2/4
//!    replicas under the affinity router, each point checked token-exact
//!    against the monolithic comparator run of the same schedule (the
//!    cluster determinism contract, asserted before anything is
//!    reported). TTFT/ITL percentiles, prefix reuse, and wire traffic
//!    per replica count.
//! 2. **Transfer-cost sweep** — the 2-replica point re-run from an
//!    instantaneous link down to a few wire bytes per tick: token
//!    streams must not move (only timing may), wire delay and the
//!    handoff-spanning first inter-token gap must grow as bandwidth
//!    shrinks.
//! 3. **Overlap × router sweep** — affinity vs round-robin placement at
//!    0%/50%/100% prompt overlap on 2 replicas. Affinity must never
//!    reuse fewer prompt tokens than round-robin, must reuse strictly
//!    more once families actually overlap (≥50%), and at full overlap
//!    its mean TTFT must not be worse — the routing headline.
//! 4. **Interference sweep** — steady decoders co-scheduled with
//!    long-prompt arrivals, monolithic vs disaggregated at equal total
//!    pages: chunked prefill inflates the monolithic engine's
//!    steady-state inter-token gaps (the iteration fed prompt chunks
//!    *and* decodes, so it costs more ticks), while the cluster's decode
//!    engine never sees a prompt chunk. The steady decoders' worst
//!    decode-phase gap must be strictly smaller on the cluster — the
//!    disaggregation headline.
//!
//! Usage: `cargo run --release -p oaken-bench --bin cluster_scaling
//! [--smoke] [out.json]` — `--smoke` shrinks the model and the sweeps
//! (CI wiring) but keeps every determinism and headline assertion; the
//! default workload writes the committed baseline.

use oaken_bench::{banner, f, row};
use oaken_cluster::{
    run_cluster, run_monolithic, ClusterConfig, ClusterReport, EngineRole, RouterPolicy,
};
use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{Model, ModelConfig, PagedKvPool};
use oaken_serving::{
    AdmissionPolicy, EngineConfig, EngineRequest, PreemptPolicy, Request, RequestOutcome,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Workload {
    model: Model,
    quantizer: Arc<dyn KvQuantizer>,
    device_pages: u32,
    host_pages: u32,
    page_size: usize,
    /// Main schedule shape: requests, families, prompt/output lengths,
    /// inter-arrival gap in ticks.
    requests: usize,
    families: u64,
    prompt_len: usize,
    max_new: usize,
    arrival_gap: u64,
    replica_sweep: Vec<usize>,
    /// Link bandwidths for the transfer-cost sweep, fastest first.
    transfer_sweep: Vec<u64>,
    overlap_sweep: Vec<usize>,
    /// Interference sweep: steady `(prompt, output)` decoders at tick 0
    /// plus long-prompt `(prompt, output)` arrivals at later ticks.
    steady_shape: (usize, usize),
    steady_count: usize,
    interferer_shape: (usize, usize),
    interferer_arrivals: Vec<u64>,
}

fn workload(smoke: bool) -> Workload {
    if smoke {
        let model = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 11);
        let quantizer = Arc::new(profile_oaken(&model, OakenConfig::default(), 4, 8, 11));
        Workload {
            model,
            quantizer,
            device_pages: 320,
            host_pages: 448,
            page_size: 512,
            requests: 6,
            families: 3,
            prompt_len: 24,
            max_new: 3,
            arrival_gap: 2,
            replica_sweep: vec![1, 2],
            transfer_sweep: vec![0, 16],
            overlap_sweep: vec![0, 100],
            steady_shape: (8, 16),
            steady_count: 1,
            interferer_shape: (48, 2),
            interferer_arrivals: vec![6],
        }
    } else {
        let model = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 256), 11);
        let quantizer = Arc::new(profile_oaken(&model, OakenConfig::default(), 4, 8, 11));
        Workload {
            model,
            quantizer,
            device_pages: 1024,
            host_pages: 1024,
            page_size: 4096,
            requests: 12,
            families: 3,
            prompt_len: 32,
            max_new: 8,
            arrival_gap: 3,
            replica_sweep: vec![1, 2, 4],
            transfer_sweep: vec![0, 128, 8],
            overlap_sweep: vec![0, 50, 100],
            steady_shape: (8, 24),
            steady_count: 2,
            interferer_shape: (64, 2),
            interferer_arrivals: vec![6, 16],
        }
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        max_batch: 4,
        admission: AdmissionPolicy::PromptOnly,
        preempt: PreemptPolicy::SwapToHost,
        record_logits: false,
        prefill_token_budget: 8,
        num_threads: 1,
        ..EngineConfig::default()
    }
}

fn cluster_config(_w: &Workload) -> ClusterConfig {
    ClusterConfig {
        replicas: 1,
        router: RouterPolicy::Affinity,
        transfer_bytes_per_tick: 0,
        work_tokens_per_tick: 8,
        scheduler_cores: 4,
        engine: engine_config(),
    }
}

fn make_pool(w: &Workload) -> PagedKvPool {
    let mut pool = PagedKvPool::for_model(
        w.model.config(),
        Some(w.quantizer.clone()),
        w.device_pages,
        w.page_size,
    );
    pool.set_host_pages(w.host_pages);
    pool.set_block_tokens(8);
    pool
}

/// The main schedule: `requests` arrivals `arrival_gap` ticks apart,
/// consecutive pairs drawn from the same prefix family (seeded per
/// family), so family members overlap in flight — the window in which
/// the prefill trie can actually be shared.
fn family_schedule(w: &Workload, overlap_pct: usize) -> Vec<(EngineRequest, u64)> {
    let shared = w.prompt_len * overlap_pct / 100;
    (0..w.requests)
        .map(|i| {
            let fam = (i as u64 / 2) % w.families;
            let req = EngineRequest::from_lengths_with_shared_prefix(
                &Request {
                    id: i as u64 + 1,
                    input_len: w.prompt_len,
                    output_len: w.max_new,
                },
                256,
                0xBEEF + fam * 0x1000,
                shared,
            );
            (req, i as u64 * w.arrival_gap)
        })
        .collect()
}

/// `q`-th percentile (nearest-rank) of unsorted tick samples.
fn pct(samples: &[u64], q: f64) -> u64 {
    assert!(!samples.is_empty(), "percentile of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn mean(samples: &[u64]) -> f64 {
    samples.iter().sum::<u64>() as f64 / samples.len().max(1) as f64
}

fn decode_tokens(report: &ClusterReport) -> u64 {
    report
        .prefill_stats
        .iter()
        .chain(&report.decode_stats)
        .map(|s| s.decode_tokens)
        .sum()
}

/// Asserts the cluster determinism contract: every request finished with
/// its full output, token for token identical to `baseline`.
fn assert_streams_match(report: &ClusterReport, baseline: &ClusterReport, what: &str) {
    assert_eq!(report.requests.len(), baseline.requests.len());
    for rec in &report.requests {
        let base = baseline.request(rec.id);
        assert_eq!(
            rec.outcome,
            RequestOutcome::Finished,
            "{what}: request {}",
            rec.id
        );
        assert_eq!(
            rec.tokens, base.tokens,
            "{what}: request {} token stream diverged",
            rec.id
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_cluster.json".to_owned());
    let w = workload(smoke);

    banner(
        "cluster_scaling",
        "disaggregated prefill/decode cluster with prefix-affinity routing",
    );
    println!(
        "model: {} ({} layers, d={}), {} requests of {}:{} tokens in {} families\n",
        w.model.config().name,
        w.model.config().num_layers,
        w.model.config().d_model,
        w.requests,
        w.prompt_len,
        w.max_new,
        w.families,
    );

    let mut json = String::from("{\n  \"bench\": \"cluster_scaling\",\n");
    let _ = writeln!(
        json,
        "  \"model\": \"{}\",\n  \"requests\": {},\n  \"families\": {},\n  \"smoke\": {smoke},",
        w.model.config().name,
        w.requests,
        w.families
    );

    // --- Replica sweep (affinity router, 50% overlap, modeled link) ------
    let schedule = family_schedule(&w, 50);
    let mono = {
        let cfg = cluster_config(&w);
        let mut mk = |_role: EngineRole, _r: usize| make_pool(&w);
        run_monolithic(&w.model, &cfg, &mut mk, schedule.clone(), &[])
    };
    let mono_ttft = mono.ttft_samples();
    let mono_itl = mono.itl_samples(false);
    println!(
        "replica sweep (affinity router, 50% overlap, link 64 B/tick; monolithic clock {}):",
        mono.clock
    );
    let rwidths = [9, 10, 8, 14, 10, 12, 11, 11];
    row(
        &[
            &"replicas",
            &"tok/s",
            &"clock",
            &"ttft p50/p99",
            &"itl p99",
            &"reused_tok",
            &"transfers",
            &"wire_B",
        ],
        &rwidths,
    );
    json.push_str("  \"replica_sweep\": [\n");
    for (i, &replicas) in w.replica_sweep.iter().enumerate() {
        let mut cfg = cluster_config(&w);
        cfg.replicas = replicas;
        cfg.transfer_bytes_per_tick = 64;
        let mut mk = |_role: EngineRole, _r: usize| make_pool(&w);
        let start = Instant::now();
        let report = run_cluster(&w.model, &cfg, &mut mk, schedule.clone(), &[]);
        let secs = start.elapsed().as_secs_f64();
        assert_streams_match(&report, &mono, &format!("{replicas} replicas"));
        let ttft = report.ttft_samples();
        let itl = report.itl_samples(true);
        row(
            &[
                &replicas,
                &f(decode_tokens(&report) as f64 / secs.max(1e-9), 1),
                &report.clock,
                &format!("{}/{}", pct(&ttft, 0.50), pct(&ttft, 0.99)),
                &pct(&itl, 0.99),
                &report.tokens_reused(),
                &report.transfer.transfers,
                &report.transfer.wire_bytes,
            ],
            &rwidths,
        );
        let _ = write!(
            json,
            "    {{\"replicas\": {replicas}, \"clock\": {}, \"ttft_ticks\": {{\"p50\": {}, \"p99\": {}}}, \
             \"decode_itl_p99_ticks\": {}, \"tokens_reused\": {}, \"transfers\": {}, \
             \"wire_bytes\": {}, \"affinity_hits\": {}, \"matches_monolithic\": true}}",
            report.clock,
            pct(&ttft, 0.50),
            pct(&ttft, 0.99),
            pct(&itl, 0.99),
            report.tokens_reused(),
            report.transfer.transfers,
            report.transfer.wire_bytes,
            report.router.affinity_hits,
        );
        json.push_str(if i + 1 < w.replica_sweep.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"monolithic\": {{\"clock\": {}, \"ttft_ticks\": {{\"p50\": {}, \"p99\": {}}}, \
         \"itl_p99_ticks\": {}, \"tokens_reused\": {}}},",
        mono.clock,
        pct(&mono_ttft, 0.50),
        pct(&mono_ttft, 0.99),
        pct(&mono_itl, 0.99),
        mono.tokens_reused(),
    );

    // --- Transfer-cost sweep (2 replicas where available) -----------------
    let replicas = if smoke { 1 } else { 2 };
    println!("\ntransfer-cost sweep ({replicas} replicas, 50% overlap):");
    let twidths = [10, 8, 12, 12, 13, 9];
    row(
        &[
            &"B/tick",
            &"clock",
            &"wire_B",
            &"delay_ticks",
            &"handoff_gap",
            &"retries",
        ],
        &twidths,
    );
    json.push_str("  \"transfer_sweep\": [\n");
    let mut delay_by_cost = Vec::new();
    let mut first_streams: Option<ClusterReport> = None;
    for (i, &bpt) in w.transfer_sweep.iter().enumerate() {
        let mut cfg = cluster_config(&w);
        cfg.replicas = replicas;
        cfg.transfer_bytes_per_tick = bpt;
        let mut mk = |_role: EngineRole, _r: usize| make_pool(&w);
        let report = run_cluster(&w.model, &cfg, &mut mk, schedule.clone(), &[]);
        if let Some(first) = &first_streams {
            assert_streams_match(&report, first, &format!("link {bpt} B/tick"));
        }
        // Mean first inter-token gap: the handoff (export, wire, ingest).
        let handoff: Vec<u64> = report
            .requests
            .iter()
            .filter(|r| r.disaggregated)
            .filter_map(|r| r.itl_gaps().first().copied())
            .collect();
        delay_by_cost.push(report.transfer.delay_ticks);
        row(
            &[
                &(if bpt == 0 {
                    "inf".to_owned()
                } else {
                    bpt.to_string()
                }),
                &report.clock,
                &report.transfer.wire_bytes,
                &report.transfer.delay_ticks,
                &f(mean(&handoff), 1),
                &report.transfer.retries,
            ],
            &twidths,
        );
        let _ = write!(
            json,
            "    {{\"bytes_per_tick\": {bpt}, \"clock\": {}, \"wire_bytes\": {}, \
             \"delay_ticks\": {}, \"mean_handoff_gap_ticks\": {:.1}, \"retries\": {}}}",
            report.clock,
            report.transfer.wire_bytes,
            report.transfer.delay_ticks,
            mean(&handoff),
            report.transfer.retries,
        );
        json.push_str(if i + 1 < w.transfer_sweep.len() {
            ",\n"
        } else {
            "\n"
        });
        if first_streams.is_none() {
            first_streams = Some(report);
        }
    }
    json.push_str("  ],\n");
    assert!(
        delay_by_cost.windows(2).all(|w| w[1] > w[0]),
        "wire delay must grow as bandwidth shrinks: {delay_by_cost:?}"
    );

    // --- Overlap × router sweep (2 replicas) ------------------------------
    let replicas = 2;
    println!("\noverlap x router sweep ({replicas} replicas, instantaneous link):");
    let owidths = [9, 10, 12, 11, 12, 11];
    row(
        &[
            &"overlap",
            &"router",
            &"reused_tok",
            &"mean_ttft",
            &"aff_hits",
            &"fallbacks",
        ],
        &owidths,
    );
    json.push_str("  \"overlap_sweep\": [\n");
    let mut reused = Vec::new(); // (pct, affinity, round_robin)
    let mut ttfts = Vec::new();
    for (i, &pct_overlap) in w.overlap_sweep.iter().enumerate() {
        let sched = family_schedule(&w, pct_overlap);
        let mut per_policy = Vec::new();
        for (j, (name, policy)) in [
            ("affinity", RouterPolicy::Affinity),
            ("rr", RouterPolicy::RoundRobin),
        ]
        .into_iter()
        .enumerate()
        {
            let mut cfg = cluster_config(&w);
            cfg.replicas = replicas;
            cfg.router = policy;
            let mut mk = |_role: EngineRole, _r: usize| make_pool(&w);
            let report = run_cluster(&w.model, &cfg, &mut mk, sched.clone(), &[]);
            let ttft = mean(&report.ttft_samples());
            per_policy.push((report.tokens_reused(), ttft));
            row(
                &[
                    &format!("{pct_overlap}%"),
                    &name,
                    &report.tokens_reused(),
                    &f(ttft, 1),
                    &report.router.affinity_hits,
                    &report.router.fallbacks,
                ],
                &owidths,
            );
            let _ = write!(
                json,
                "    {{\"overlap_pct\": {pct_overlap}, \"router\": \"{name}\", \
                 \"tokens_reused\": {}, \"mean_ttft_ticks\": {ttft:.1}, \
                 \"affinity_hits\": {}, \"fallbacks\": {}}}",
                report.tokens_reused(),
                report.router.affinity_hits,
                report.router.fallbacks,
            );
            let last = i + 1 == w.overlap_sweep.len() && j == 1;
            json.push_str(if last { "\n" } else { ",\n" });
        }
        reused.push((pct_overlap, per_policy[0].0, per_policy[1].0));
        ttfts.push((pct_overlap, per_policy[0].1, per_policy[1].1));
    }
    json.push_str("  ],\n");
    for &(pct_overlap, aff, rr) in &reused {
        assert!(
            aff >= rr,
            "affinity must never reuse fewer tokens than round-robin at {pct_overlap}%: {aff} vs {rr}"
        );
        if pct_overlap >= 50 {
            assert!(
                aff > rr,
                "affinity must reuse strictly more once families overlap ({pct_overlap}%): {aff} vs {rr}"
            );
        }
    }
    let &(_, aff_ttft, rr_ttft) = ttfts.last().expect("overlap sweep ran");
    assert!(
        aff_ttft <= rr_ttft,
        "at full overlap affinity mean TTFT must not be worse: {aff_ttft:.1} vs {rr_ttft:.1}"
    );

    // --- Interference sweep (disaggregation headline) ---------------------
    let (sp, so) = w.steady_shape;
    let (ip, io) = w.interferer_shape;
    let mut sched: Vec<(EngineRequest, u64)> = (0..w.steady_count)
        .map(|i| {
            let req = EngineRequest::from_lengths(
                &Request {
                    id: 100 + i as u64,
                    input_len: sp,
                    output_len: so,
                },
                256,
                0xBEEF,
            );
            (req, 0)
        })
        .collect();
    for (i, &at) in w.interferer_arrivals.iter().enumerate() {
        let req = EngineRequest::from_lengths(
            &Request {
                id: 200 + i as u64,
                input_len: ip,
                output_len: io,
            },
            256,
            0xFEED,
        );
        sched.push((req, at));
    }
    let run_itl = |disaggregate: bool| -> (ClusterReport, u64) {
        let mut cfg = cluster_config(&w);
        cfg.work_tokens_per_tick = 4;
        let mut mk = |_role: EngineRole, _r: usize| make_pool(&w);
        let report = if disaggregate {
            run_cluster(&w.model, &cfg, &mut mk, sched.clone(), &[])
        } else {
            run_monolithic(&w.model, &cfg, &mut mk, sched.clone(), &[])
        };
        // Steady decoders' worst decode-phase gap, past the warmup (the
        // first two gaps cover handoff and ramp on either topology).
        let worst = (0..w.steady_count)
            .map(|i| {
                report
                    .request(100 + i as u64)
                    .itl_gaps()
                    .into_iter()
                    .skip(2)
                    .max()
                    .expect("steady decoder produced gaps")
            })
            .max()
            .expect("at least one steady decoder");
        (report, worst)
    };
    let (mono_i, mono_worst) = run_itl(false);
    let (cluster_i, cluster_worst) = run_itl(true);
    for i in 0..w.steady_count {
        let id = 100 + i as u64;
        assert_eq!(
            cluster_i.request(id).tokens,
            mono_i.request(id).tokens,
            "steady decoder {id} stream diverged between topologies"
        );
    }
    println!(
        "\ninterference sweep ({} steady {sp}:{so} decoders vs {} arriving {ip}-token prompts):",
        w.steady_count,
        w.interferer_arrivals.len()
    );
    println!(
        "  monolithic worst steady gap: {mono_worst} ticks (clock {})",
        mono_i.clock
    );
    println!(
        "  cluster    worst steady gap: {cluster_worst} ticks (clock {})",
        cluster_i.clock
    );
    let _ = writeln!(
        json,
        "  \"interference\": {{\"steady\": {}, \"interferers\": {}, \
         \"monolithic_worst_steady_gap_ticks\": {mono_worst}, \
         \"cluster_worst_steady_gap_ticks\": {cluster_worst}, \
         \"monolithic_clock\": {}, \"cluster_clock\": {}}}",
        w.steady_count,
        w.interferer_arrivals.len(),
        mono_i.clock,
        cluster_i.clock,
    );
    assert!(
        cluster_worst < mono_worst,
        "disaggregation must flatten the steady decoders' worst gap: cluster {cluster_worst} vs monolithic {mono_worst}"
    );

    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}

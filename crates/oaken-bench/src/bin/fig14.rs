//! Figure 14: generation throughput on the two Azure production traces
//! (Conversation, BurstGPT) for Llama2-13B and Mixtral-8x7B, batch 16–128.

use oaken_accel::{AcceleratorSpec, QuantPolicy, SystemModel};
use oaken_bench::{banner, f, row, TRACE_BATCH_SWEEP};
use oaken_model::ModelConfig;
use oaken_serving::{simulate_trace, synthesize_requests, TraceSpec};

fn main() {
    banner(
        "Figure 14",
        "trace-driven generation throughput (tokens/s), batch 16-128",
    );
    let traces = [TraceSpec::conversation(), TraceSpec::burstgpt()];
    let models = [ModelConfig::llama2_13b(), ModelConfig::mixtral_8x7b()];
    for model in &models {
        for trace in &traces {
            println!("\n--- {} / {} ---", trace.name, model.name);
            let is_moe = model.moe.is_some();
            // Llama2-13B fits one A100; Mixtral needs two (pipeline
            // parallel), per the paper's §6.1 GPU setup.
            let gpu = if is_moe {
                AcceleratorSpec::a100_x2()
            } else {
                AcceleratorSpec::a100()
            };
            let mut systems = vec![
                ("vLLM", SystemModel::new(gpu.clone(), QuantPolicy::fp16())),
                (
                    "Tender",
                    SystemModel::new(AcceleratorSpec::tender(), QuantPolicy::tender()),
                ),
                (
                    "LPU",
                    SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16()),
                ),
                (
                    "Oaken-LPDDR",
                    SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()),
                ),
            ];
            if !is_moe {
                // QServe lacks MoE support and Oaken-HBM cannot hold
                // Mixtral (§6.2) — both excluded for Mixtral.
                systems.insert(
                    1,
                    (
                        "QServe",
                        SystemModel::new(gpu.clone(), QuantPolicy::qserve()),
                    ),
                );
                systems.push((
                    "Oaken-HBM",
                    SystemModel::new(AcceleratorSpec::oaken_hbm(), QuantPolicy::oaken()),
                ));
            }
            let requests = synthesize_requests(trace, 256, 99);
            let mut header: Vec<&dyn std::fmt::Display> = vec![&"batch"];
            for (name, _) in &systems {
                header.push(name);
            }
            let widths = vec![12usize; header.len()];
            row(&header, &widths);
            for &b in &TRACE_BATCH_SWEEP {
                let cells: Vec<String> = systems
                    .iter()
                    .map(|(_, s)| {
                        let r = simulate_trace(s, model, &requests, b);
                        if r.oom_batches > 0 && r.output_tokens == 0 {
                            "OOM".to_owned()
                        } else {
                            f(r.gen_throughput, 0)
                        }
                    })
                    .collect();
                let mut r: Vec<&dyn std::fmt::Display> = vec![&b];
                for c in &cells {
                    r.push(c);
                }
                row(&r, &widths);
            }
        }
    }
    println!();
    println!("Expected shape: Conversation's short outputs mute Oaken's gain;");
    println!("BurstGPT's long outputs widen it. Mixtral's GQA shrinks the KV");
    println!("cache so quantization helps less; Tender loses to prompt-length");
    println!("padding (paper Figure 14).");
}

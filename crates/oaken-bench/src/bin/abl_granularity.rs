//! Ablation: per-layer (the paper's choice) vs per-head threshold
//! granularity, measured as reconstruction error on live proxy-model KV
//! vectors against the threshold-table cost.

use oaken_bench::{banner, f, row};
use oaken_core::{KvKind, OakenConfig, OakenQuantizer, OfflineProfiler, PerHeadProfiler};
use oaken_model::{ExactCache, Model, ModelConfig};
use std::cell::RefCell;
use std::rc::Rc;

type KvRow = (usize, KvKind, Vec<f32>);

fn collect_rows(model: &Model, tokens: &[u32]) -> Vec<KvRow> {
    let rows: Rc<RefCell<Vec<KvRow>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let mut session = model.session(Box::new(ExactCache::new()));
        let r = Rc::clone(&rows);
        session.set_kv_observer(Box::new(move |l, k, v| {
            r.borrow_mut().push((l, k, v.to_vec()));
        }));
        for &t in tokens {
            session.advance(t);
        }
    }
    Rc::try_unwrap(rows).expect("observer dropped").into_inner()
}

fn main() {
    banner(
        "Ablation: threshold granularity",
        "per-layer vs per-head thresholds (Llama2-7B proxy)",
    );
    let cfg = ModelConfig::llama2_7b().proxy(4, 64);
    let num_heads = cfg.num_kv_heads;
    let head_dim = cfg.head_dim();
    let layers = cfg.num_layers;
    let model = Model::synthetic(cfg, 4242);

    // Profile both granularities on the same sample prompts.
    let profile_tokens: Vec<u32> = (0..160u32).map(|i| (i * 53 + 17) % 256).collect();
    let config = OakenConfig::default();
    let mut per_layer = OfflineProfiler::new(config.clone(), layers);
    let mut per_head = PerHeadProfiler::new(config.clone(), layers, num_heads, head_dim);
    for (l, k, v) in collect_rows(&model, &profile_tokens) {
        per_layer.observe(l, k, &v);
        per_head.observe(l, k, &v);
    }
    let q_layer = OakenQuantizer::new(config.clone(), per_layer.finish());
    let q_head = per_head.finish();

    // Evaluate reconstruction error on unseen prompts.
    let eval_tokens: Vec<u32> = (0..96u32).map(|i| (i * 97 + 5) % 256).collect();
    let mut mse_layer = 0.0f64;
    let mut mse_head = 0.0f64;
    let mut n = 0usize;
    for (l, k, v) in collect_rows(&model, &eval_tokens) {
        let fv = q_layer.quantize_vector(&v, l, k).expect("profiled layer");
        let back = q_layer.dequantize_vector(&fv, l, k).expect("decodes");
        mse_layer += v
            .iter()
            .zip(&back)
            .map(|(a, b)| f64::from(a - b).powi(2))
            .sum::<f64>();
        let back = q_head.roundtrip_vector(&v, l, k).expect("head layout");
        mse_head += v
            .iter()
            .zip(&back)
            .map(|(a, b)| f64::from(a - b).powi(2))
            .sum::<f64>();
        n += v.len();
    }
    mse_layer /= n as f64;
    mse_head /= n as f64;

    row(
        &[&"granularity", &"table entries", &"KV MSE"],
        &[12, 14, 12],
    );
    row(
        &[&"per-layer", &(layers * 2), &f(mse_layer, 6)],
        &[12, 14, 12],
    );
    row(
        &[&"per-head", &q_head.table_entries(), &f(mse_head, 6)],
        &[12, 14, 12],
    );
    println!();
    println!(
        "Per-head reduces KV reconstruction MSE by {:.1}% at {}x the",
        100.0 * (1.0 - mse_head / mse_layer),
        num_heads
    );
    println!("threshold-table storage — the paper's per-layer choice trades a");
    println!(
        "small accuracy margin for a {}x smaller threshold register file.",
        num_heads
    );
}

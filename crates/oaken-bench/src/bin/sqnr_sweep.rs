//! Extension experiment: signal-to-quantization-noise ratio of every
//! method on live proxy-model KV tensors — the elementwise view that
//! underlies the Table 2 accuracy ordering.

use oaken_baselines::all_baselines;
use oaken_bench::{banner, f, row};
use oaken_core::{KvKind, KvQuantizer, OakenConfig};
use oaken_eval::{profile_oaken, sqnr_db};
use oaken_model::{ExactCache, Model, ModelConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    banner(
        "SQNR sweep",
        "per-method KV reconstruction SQNR on the Llama2-7B proxy (dB, higher is better)",
    );
    let model = Model::synthetic(ModelConfig::llama2_7b().proxy(4, 64), 77);
    let oaken = profile_oaken(&model, OakenConfig::default(), 10, 48, 3);

    // Collect a [tokens × kv_dim] matrix per (layer, kind).
    let kv_dim = model.config().kv_dim();
    let layers = model.config().num_layers;
    let store: Rc<RefCell<Vec<Vec<f32>>>> = Rc::new(RefCell::new(vec![Vec::new(); layers * 2]));
    {
        let mut session = model.session(Box::new(ExactCache::new()));
        let s = Rc::clone(&store);
        session.set_kv_observer(Box::new(move |l, k, v| {
            let slot = l * 2 + usize::from(k == KvKind::Value);
            s.borrow_mut()[slot].extend_from_slice(v);
        }));
        for t in 0..64u32 {
            session.advance((t * 37 + 11) % 256);
        }
    }
    let store = store.borrow();

    let mut methods: Vec<Box<dyn KvQuantizer>> = all_baselines();
    methods.push(Box::new(oaken));
    row(
        &[&"method", &"keys SQNR", &"values SQNR", &"eff-bits"],
        &[9, 10, 12, 9],
    );
    for m in &methods {
        let mut acc = [0.0f64; 2]; // keys, values
        let mut n = [0usize; 2];
        for l in 0..layers {
            for (ki, kind) in KvKind::ALL.iter().enumerate() {
                let data = &store[l * 2 + ki];
                let rows = data.len() / kv_dim;
                if rows == 0 {
                    continue;
                }
                let back = m.roundtrip_matrix(data, rows, kv_dim, l, *kind);
                let s = sqnr_db(data, &back);
                if s.is_finite() {
                    acc[ki] += s;
                    n[ki] += 1;
                }
            }
        }
        let keys = if n[0] > 0 {
            acc[0] / n[0] as f64
        } else {
            f64::INFINITY
        };
        let values = if n[1] > 0 {
            acc[1] / n[1] as f64
        } else {
            f64::INFINITY
        };
        let eff = m.effective_bits(1024, 4096);
        let show = |x: f64| {
            if x.is_finite() {
                f(x, 1)
            } else {
                ">60".to_owned()
            }
        };
        row(
            &[&m.name(), &show(keys), &show(values), &f(eff, 2)],
            &[9, 10, 12, 9],
        );
    }
    println!();
    println!("Expected shape: fp16 ≫ everything; Oaken and KVQuant lead the");
    println!("~4.8-bit class (outlier isolation); Tender trails (power-of-two");
    println!("per-group scales). SQNR ordering predicts the Table 2 ordering.");
}

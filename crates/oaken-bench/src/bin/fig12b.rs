//! Figure 12(b): end-to-end generation latency breakdown (non-attention,
//! attention, quantization, dequantization) for LPU, Oaken's algorithm on
//! GPU, and the Oaken accelerator, Llama2-7B, batch 16/32/64.

use oaken_accel::{AcceleratorSpec, QuantPolicy, SystemModel};
use oaken_bench::{banner, f, row};
use oaken_model::ModelConfig;

fn main() {
    banner(
        "Figure 12(b)",
        "latency breakdown per generation iteration, Llama2-7B, ctx 1.5K (ms)",
    );
    let model = ModelConfig::llama2_7b();
    let systems = [
        (
            "LPU",
            SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16()),
        ),
        (
            "Oaken-GPU",
            SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::oaken_gpu()),
        ),
        (
            "Oaken",
            SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()),
        ),
    ];
    row(
        &[
            &"batch",
            &"system",
            &"non-attn",
            &"attention",
            &"quant",
            &"dequant",
            &"total",
            &"q+dq %",
        ],
        &[6, 10, 10, 10, 8, 8, 8, 7],
    );
    for batch in [16usize, 32, 64] {
        for (name, sys) in &systems {
            let it = sys.generation_iteration(&model, batch, 1536);
            let total = it.total();
            let qdq_pct = 100.0 * (it.quant_exposed + it.dequant_exposed) / total;
            row(
                &[
                    &batch,
                    name,
                    &f(it.non_attention * 1e3, 2),
                    &f(it.attention * 1e3, 2),
                    &f(it.quant_exposed * 1e3, 3),
                    &f(it.dequant_exposed * 1e3, 3),
                    &f(total * 1e3, 2),
                    &f(qdq_pct, 2),
                ],
                &[6, 10, 10, 10, 8, 8, 8, 7],
            );
        }
    }
    println!();
    let oaken = &systems[2].1;
    let lpu = &systems[0].1;
    let att_oaken = oaken.generation_iteration(&model, 64, 1536).attention;
    let att_lpu = lpu.generation_iteration(&model, 64, 1536).attention;
    println!(
        "Attention time reduction vs LPU at batch 64: {:.1}% (paper: ~55%)",
        100.0 * (1.0 - att_oaken / att_lpu)
    );
    println!();
    println!("Expected shape: attention grows with batch; Oaken's exposed");
    println!("quant+dequant stays in the low single-digit % (paper: 1.29% +");
    println!("3.23% at batch 64) while Oaken-GPU pays warp divergence.");
}

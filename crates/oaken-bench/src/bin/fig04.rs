//! Figure 4: throughput of HBM-NPU vs LPDDR-NPU (no quantization) on
//! Llama2-13B and OPT-30B, batch 1–32, 1K:1K sequences.

use oaken_accel::{AcceleratorSpec, CapacityPolicy, QuantPolicy, SystemModel, Workload};
use oaken_bench::{banner, f, row};
use oaken_model::ModelConfig;

fn main() {
    banner(
        "Figure 4",
        "HBM vs LPDDR NPU throughput without quantization (1K:1K)",
    );
    let batches = [1usize, 4, 8, 12, 16, 24, 32];
    for model in [ModelConfig::llama2_13b(), ModelConfig::opt_30b()] {
        println!("\n--- {} ---", model.name);
        row(
            &[&"batch", &"HBM-NPU (tok/s)", &"LPDDR-NPU (tok/s)"],
            &[6, 16, 18],
        );
        // The motivation-study NPUs use fixed KV allocation: over-capacity
        // batches hard-OOM (the missing bars of Figure 4b).
        let hbm = SystemModel::new(AcceleratorSpec::hbm_npu(), QuantPolicy::fp16())
            .with_capacity(CapacityPolicy::Fail);
        let lpddr = SystemModel::new(AcceleratorSpec::lpddr_npu(), QuantPolicy::fp16())
            .with_capacity(CapacityPolicy::Fail);
        for &b in &batches {
            let w = Workload::one_k_one_k(b);
            let rh = hbm.run(&model, &w);
            let rl = lpddr.run(&model, &w);
            let show = |r: &oaken_accel::RunResult| {
                if r.oom {
                    "OOM".to_owned()
                } else {
                    f(r.throughput, 1)
                }
            };
            row(&[&b, &show(&rh), &show(&rl)], &[6, 16, 18]);
        }
    }
    println!();
    println!("Expected shape: HBM-NPU leads at small batches (bandwidth),");
    println!("while OPT-30B OOMs on 80 GB HBM around batch 8 and the 256 GB");
    println!("LPDDR-NPU keeps scaling (Figure 4b).");
}

//! Decode-scaling benchmark: tokens/sec of the incremental streaming KV
//! cache versus the legacy full-recompute path, over growing sequence
//! lengths — the measurement behind the O(n·d) vs O(n²·d) claim of the
//! incremental cache design (and the committed `BENCH_decode.json`
//! baseline).
//!
//! Per token the loop does exactly what one decoder layer does in decode:
//! append the token's K/V rows, then read both dequantized views for
//! attention. In recompute mode every read re-quantizes the whole prefix;
//! in incremental mode the append is O(d) and the read is free.
//!
//! Usage: `cargo run --release -p oaken-bench --bin decode_scaling
//! [out.json]` — writes a JSON summary to `out.json` (default
//! `BENCH_decode.json`) and a human-readable table to stdout.

use oaken_bench::decode_workload::{decode_rows, kv_row, oaken, KV_DIM};
use oaken_bench::{banner, f, row};
use oaken_core::KvQuantizer;
use oaken_model::{
    attend_one_fused_into, attend_one_into, AttentionScratch, AttentionShape, KernelMode,
    KvCacheBackend, QuantizedCache,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const SEQ_LENS: [usize; 3] = [512, 2048, 8192];
/// Read-path (attention kernel) sweep lengths.
const READ_SEQ_LENS: [usize; 4] = [128, 512, 2048, 8192];
/// Recompute above this length is extrapolation-verified only (the
/// quadratic path at 8k already takes tens of seconds; we still run it —
/// this cap only guards accidental larger sweeps).
const MAX_MEASURED: usize = 8192;

/// Runs one decode of `seq_len` tokens, returning (seconds, view checksum).
fn run_decode(mut cache: QuantizedCache, seq_len: usize) -> (f64, f64) {
    cache.reset(1, KV_DIM);
    let rows = decode_rows(seq_len);
    let mut checksum = 0.0f64;
    let start = Instant::now();
    for t in 0..seq_len {
        cache.append(0, &rows[2 * t], &rows[2 * t + 1]);
        // Attention reads both views every token.
        let keys = black_box(cache.keys(0));
        checksum += f64::from(keys[keys.len() - 1]);
        let values = black_box(cache.values(0));
        checksum += f64::from(values[values.len() - 1]);
    }
    (start.elapsed().as_secs_f64(), checksum)
}

/// Confirms the two modes materialize bit-identical views over a full
/// decode (final keys and values compared bit-for-bit).
fn verify_bit_identical(q: &Arc<dyn KvQuantizer>, seq_len: usize) -> bool {
    let mut inc = QuantizedCache::new(q.clone());
    let mut rec = QuantizedCache::new_recompute(q.clone());
    inc.reset(1, KV_DIM);
    rec.reset(1, KV_DIM);
    for t in 0..seq_len {
        let k = kv_row(KV_DIM, 10_000 + 2 * t as u64);
        let v = kv_row(KV_DIM, 10_001 + 2 * t as u64);
        inc.append(0, &k, &v);
        rec.append(0, &k, &v);
    }
    let keys_match = inc
        .keys(0)
        .iter()
        .zip(rec.keys(0))
        .all(|(a, b)| a.to_bits() == b.to_bits());
    let values_match = inc
        .values(0)
        .iter()
        .zip(rec.values(0))
        .all(|(a, b)| a.to_bits() == b.to_bits());
    keys_match && values_match && inc.keys(0).len() == seq_len * KV_DIM
}

/// The attention geometry of the read-path sweep: `kv_dim` 128 split as
/// 2 KV heads × 64, with 4 query heads (GQA group of 2).
fn read_shape() -> AttentionShape {
    AttentionShape {
        num_heads: 4,
        num_kv_heads: 2,
        head_dim: KV_DIM / 2,
        window: None,
    }
}

/// One full decode of `seq_len` tokens through the **attention read
/// path**: per token, append the K/V rows then run the single-token
/// attention kernel over the whole prefix. `kernel` selects how the
/// kernel reads the cache — `Exact` streams dequantized f32 views,
/// `Fused` reads the encoded rows directly. Returns (seconds, checksum).
fn run_read_path(mut cache: QuantizedCache, kernel: KernelMode, seq_len: usize) -> (f64, f64) {
    let shape = read_shape();
    cache.reset(1, KV_DIM);
    cache.set_kernel_mode(kernel);
    let rows = decode_rows(seq_len);
    let queries: Vec<Vec<f32>> = (0..seq_len)
        .map(|t| kv_row(shape.q_dim(), 50_000 + t as u64))
        .collect();
    let mut scratch = AttentionScratch::default();
    let mut out = Vec::new();
    let mut checksum = 0.0f64;
    let start = Instant::now();
    for t in 0..seq_len {
        cache.append(0, &rows[2 * t], &rows[2 * t + 1]);
        if kernel == KernelMode::Fused {
            let (ke, ve) = cache.encoded_kv(0).expect("fused cache serves encoded");
            attend_one_fused_into(&queries[t], &ke, &ve, t + 1, &shape, &mut scratch, &mut out);
        } else {
            let keys = black_box(cache.keys(0)).to_vec();
            let values = black_box(cache.values(0));
            attend_one_into(
                &queries[t],
                &keys,
                values,
                t + 1,
                &shape,
                &mut scratch,
                &mut out,
            );
        }
        checksum += f64::from(out[0]) + f64::from(out[out.len() - 1]);
        black_box(&out);
    }
    (start.elapsed().as_secs_f64(), checksum)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_decode.json".to_owned());
    let q = oaken();

    banner(
        "decode_scaling",
        "incremental streaming cache vs full-recompute path (Oaken quantizer, kv_dim 128)",
    );
    let identical = verify_bit_identical(&q, 512);
    println!("bit-identical views (seq 512): {identical}");
    assert!(
        identical,
        "incremental path must be bit-exact with recompute"
    );

    let widths = [8, 14, 14, 14, 10];
    row(
        &[
            &"seq_len",
            &"inc tok/s",
            &"rec tok/s",
            &"speedup",
            &"growth",
        ],
        &widths,
    );

    let mut json = String::from("{\n  \"bench\": \"decode_scaling\",\n  \"kv_dim\": 128,\n  \"quantizer\": \"oaken\",\n  \"bit_identical\": true,\n  \"results\": [\n");
    let mut prev_speedup = 0.0f64;
    for (i, &seq_len) in SEQ_LENS.iter().enumerate() {
        assert!(seq_len <= MAX_MEASURED);
        let (inc_secs, c1) = run_decode(QuantizedCache::new(q.clone()), seq_len);
        let (rec_secs, c2) = run_decode(QuantizedCache::new_recompute(q.clone()), seq_len);
        assert_eq!(c1.to_bits(), c2.to_bits(), "checksum mismatch at {seq_len}");
        let inc_tps = seq_len as f64 / inc_secs;
        let rec_tps = seq_len as f64 / rec_secs;
        let speedup = inc_tps / rec_tps;
        let growth = if prev_speedup > 0.0 {
            f(speedup / prev_speedup, 2)
        } else {
            "-".to_owned()
        };
        row(
            &[
                &seq_len,
                &f(inc_tps, 0),
                &f(rec_tps, 0),
                &format!("{}x", f(speedup, 1)),
                &growth,
            ],
            &widths,
        );
        let _ = write!(
            json,
            "    {{\"seq_len\": {seq_len}, \"incremental_tokens_per_sec\": {inc_tps:.1}, \"recompute_tokens_per_sec\": {rec_tps:.1}, \"speedup\": {speedup:.2}}}"
        );
        json.push_str(if i + 1 < SEQ_LENS.len() { ",\n" } else { "\n" });
        prev_speedup = speedup;
    }
    json.push_str("  ],\n");

    // ---- Read path: attention kernels over the three cache read modes.
    println!();
    banner(
        "read_path",
        &format!(
            "per-token attention: exact (f32 views) vs fused (encoded rows) vs recompute \
             [simd: {}]",
            cfg!(feature = "simd")
        ),
    );
    let rwidths = [8, 13, 13, 13, 12, 12];
    row(
        &[
            &"seq_len",
            &"exact tok/s",
            &"fused tok/s",
            &"rec tok/s",
            &"fused/exact",
            &"fused/rec",
        ],
        &rwidths,
    );
    let _ = write!(
        json,
        "  \"simd\": {},\n  \"read_path\": [\n",
        cfg!(feature = "simd")
    );
    for (i, &seq_len) in READ_SEQ_LENS.iter().enumerate() {
        let (exact_secs, c_exact) =
            run_read_path(QuantizedCache::new(q.clone()), KernelMode::Exact, seq_len);
        let (fused_secs, c_fused) =
            run_read_path(QuantizedCache::new(q.clone()), KernelMode::Fused, seq_len);
        let (rec_secs, c_rec) = run_read_path(
            QuantizedCache::new_recompute(q.clone()),
            KernelMode::Exact,
            seq_len,
        );
        // Exact and recompute stream bit-identical views; fused is held to
        // its SQNR contract (property-tested), so a loose relative check
        // suffices here.
        assert_eq!(
            c_exact.to_bits(),
            c_rec.to_bits(),
            "exact != recompute at {seq_len}"
        );
        let rel = (c_exact - c_fused).abs() / c_exact.abs().max(1.0);
        assert!(
            rel < 5e-2,
            "fused checksum drifted at {seq_len}: rel {rel:e}"
        );
        let exact_tps = seq_len as f64 / exact_secs;
        let fused_tps = seq_len as f64 / fused_secs;
        let rec_tps = seq_len as f64 / rec_secs;
        row(
            &[
                &seq_len,
                &f(exact_tps, 0),
                &f(fused_tps, 0),
                &f(rec_tps, 0),
                &format!("{}x", f(fused_tps / exact_tps, 2)),
                &format!("{}x", f(fused_tps / rec_tps, 1)),
            ],
            &rwidths,
        );
        let _ = write!(
            json,
            "    {{\"seq_len\": {seq_len}, \"exact_tokens_per_sec\": {exact_tps:.1}, \"fused_tokens_per_sec\": {fused_tps:.1}, \"recompute_tokens_per_sec\": {rec_tps:.1}, \"fused_vs_exact\": {:.2}, \"fused_vs_recompute\": {:.2}}}",
            fused_tps / exact_tps,
            fused_tps / rec_tps,
        );
        json.push_str(if i + 1 < READ_SEQ_LENS.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}

//! Figure 12(a): accuracy (Wikitext-like perplexity) vs effective bits as
//! the quantization group ratios sweep — the trade-off space whose
//! Pareto frontier contains the shipping 4%/90%/6% configuration.

use oaken_bench::{banner, f, row};
use oaken_core::{GroupRatios, OakenConfig};
use oaken_eval::harness::EvalSpec;
use oaken_eval::{profile_oaken, EvalHarness};
use oaken_model::{Model, ModelConfig};
use std::sync::Arc;

fn main() {
    banner(
        "Figure 12(a)",
        "perplexity vs effective bits across group ratios (Llama2-7B proxy)",
    );
    let model = Model::synthetic(ModelConfig::llama2_7b().proxy(4, 64), 2024);
    let harness = EvalHarness::new(&model, &EvalSpec::paper());
    let fp32 = harness.evaluate(None);
    println!("FP32 reference perplexity: {:.3}\n", fp32.perplexity);

    row(
        &[
            &"outer/middle/inner",
            &"outlier %",
            &"eff bits",
            &"perplexity",
        ],
        &[18, 10, 9, 11],
    );
    // Sweep outlier budget and its split, as in the figure.
    let sweeps: [(f64, f64); 10] = [
        (0.01, 0.01),
        (0.02, 0.02),
        (0.02, 0.06),
        (0.04, 0.04),
        (0.04, 0.06), // the shipping configuration
        (0.06, 0.04),
        (0.04, 0.10),
        (0.08, 0.06),
        (0.10, 0.08),
        (0.10, 0.10),
    ];
    for (outer, inner) in sweeps {
        let ratios =
            GroupRatios::new(outer, 1.0 - outer - inner, inner).expect("sweep ratios are valid");
        let config = OakenConfig {
            ratios,
            ..OakenConfig::default()
        };
        // Report effective bits at the full model's KV width (4096); the
        // proxy's tiny kv_dim would inflate the per-vector scale overhead.
        let eff = config.predicted_effective_bits(4096);
        let q = profile_oaken(&model, config, 8, 48, 7);
        let ppl = harness.evaluate(Some(Arc::new(q))).perplexity;
        let label = format!(
            "{:.0}/{:.0}/{:.0}",
            outer * 100.0,
            (1.0 - outer - inner) * 100.0,
            inner * 100.0
        );
        row(
            &[
                &label,
                &f((outer + inner) * 100.0, 0),
                &f(eff, 2),
                &f(ppl, 3),
            ],
            &[18, 10, 9, 11],
        );
    }
    println!();
    println!("Expected shape: perplexity falls toward the FP32 reference as");
    println!("the outlier budget (and effective bits) grows; 4/90/6 sits on");
    println!("the Pareto frontier (paper Figure 12a).");
}

//! Figure 13: throughput vs total sequence length (1K–32K) on Llama2-13B
//! with batch 16, input:output = 1:1.

use oaken_accel::{AcceleratorSpec, CapacityPolicy, QuantPolicy, RunResult, SystemModel, Workload};
use oaken_bench::{banner, f, row};
use oaken_model::ModelConfig;

fn show(r: &RunResult) -> String {
    if r.oom {
        "OOM".to_owned()
    } else {
        f(r.throughput, 0)
    }
}

fn main() {
    banner(
        "Figure 13",
        "throughput vs total sequence length, Llama2-13B, batch 16, 1:1",
    );
    let model = ModelConfig::llama2_13b();
    // A 16-request batch must fit entirely to complete (§6.2: "HBM-based
    // systems including QServe and Oaken-HBM cannot handle sequences longer
    // than 16K, making it difficult to complete the entire batch"); only
    // vLLM's continuous batching degrades gracefully.
    let systems = [
        (
            "vLLM",
            SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16()),
        ),
        (
            "QServe",
            SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::qserve())
                .with_capacity(CapacityPolicy::Fail),
        ),
        (
            "Tender",
            SystemModel::new(AcceleratorSpec::tender(), QuantPolicy::tender())
                .with_capacity(CapacityPolicy::Fail),
        ),
        (
            "LPU",
            SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16())
                .with_capacity(CapacityPolicy::Fail),
        ),
        (
            "Oaken-LPDDR",
            SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken())
                .with_capacity(CapacityPolicy::Fail),
        ),
        (
            "Oaken-HBM",
            SystemModel::new(AcceleratorSpec::oaken_hbm(), QuantPolicy::oaken())
                .with_capacity(CapacityPolicy::Fail),
        ),
    ];
    let mut header: Vec<&dyn std::fmt::Display> = vec![&"seq len"];
    for (name, _) in &systems {
        header.push(name);
    }
    let widths = vec![11usize; header.len()];
    row(&header, &widths);
    for total_len in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        let w = Workload {
            batch: 16,
            input_len: total_len / 2,
            output_len: total_len / 2,
        };
        let cells: Vec<String> = systems
            .iter()
            .map(|(_, s)| show(&s.run(&model, &w)))
            .collect();
        let label = if total_len >= 1024 {
            format!("{}K", total_len / 1024)
        } else {
            total_len.to_string()
        };
        let mut r: Vec<&dyn std::fmt::Display> = vec![&label];
        for c in &cells {
            r.push(c);
        }
        row(&r, &widths);
    }
    println!();
    println!("Expected shape: GPUs lead at short sequences (compute-rich");
    println!("prefill dominates); Oaken-HBM overtakes as attention grows but");
    println!("OOMs beyond 16K; Oaken-LPDDR alone reaches 32K (paper Fig. 13).");
}

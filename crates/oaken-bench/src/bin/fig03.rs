//! Figure 3(c): GPU core utilization per operation during the generation
//! phase of batched Llama2-13B inference on an A100.

use oaken_accel::{generation_utilization, AcceleratorSpec};
use oaken_bench::{banner, f, row};
use oaken_model::ModelConfig;

fn main() {
    banner(
        "Figure 3(c)",
        "A100 utilization by op segment, Llama2-13B generation, batch 32",
    );
    let report = generation_utilization(
        &AcceleratorSpec::a100(),
        &ModelConfig::llama2_13b(),
        32,
        1536,
    );
    row(&[&"segment", &"utilization (%)"], &[10, 16]);
    for (seg, util) in &report.segments {
        row(&[&seg.label(), &f(*util, 1)], &[10, 16]);
    }
    println!();
    println!("Expected shape: MHA is the utilization sink (bandwidth-bound,");
    println!("un-batchable); FFN/QKVGen reach the batched-GEMM efficiency;");
    println!("LayerNorms barely register on the matrix pipelines.");
}

//! Table 3: group-count ablation — perplexity and effective bitwidth for
//! 2–5 quantization groups at a fixed 10% outlier budget, including the
//! 4-bit-outlier alignment variants.

use oaken_bench::{banner, f, row};
use oaken_core::AblationQuantizer;
use oaken_eval::harness::EvalSpec;
use oaken_eval::EvalHarness;
use oaken_model::{Model, ModelConfig};
use std::sync::Arc;

fn main() {
    banner(
        "Table 3",
        "group-count ablation on the Llama2-7B proxy (10% outliers)",
    );
    let model = Model::synthetic(ModelConfig::llama2_7b().proxy(4, 64), 2024);
    let harness = EvalHarness::new(&model, &EvalSpec::paper());
    let fp32 = harness.evaluate(None);
    println!("FP32 reference perplexity: {:.3}\n", fp32.perplexity);

    row(
        &[
            &"group ratios",
            &"groups",
            &"outlier bits",
            &"eff bits",
            &"ppl",
        ],
        &[16, 7, 13, 9, 9],
    );
    for config in AblationQuantizer::paper_rows() {
        let groups = config.num_groups();
        let bits = config.outlier_bits;
        let eff = config.effective_bitwidth();
        let label = config.label.clone();
        let r = harness.evaluate(Some(Arc::new(config)));
        row(
            &[&label, &groups, &bits, &f(eff, 1), &f(r.perplexity, 3)],
            &[16, 7, 13, 9, 9],
        );
    }
    println!();
    println!("Expected shape (paper Table 3): 90/10 (no outer isolation) is");
    println!("the worst row; 4-5 groups improve perplexity slightly but cost");
    println!("5.6 effective bits unless outliers drop to 4 bits, which gives");
    println!("back some accuracy — 3 groups is the cost/accuracy optimum.");
}

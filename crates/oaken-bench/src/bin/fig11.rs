//! Figure 11: end-to-end throughput of the GPU baselines (vLLM, KVQuant,
//! KIVI, QServe), LPU, Tender, and Oaken (HBM/LPDDR) across six models and
//! batch sizes 16–256 at 1K:1K.

use oaken_accel::{AcceleratorSpec, QuantPolicy, RunResult, SystemModel, Workload};
use oaken_bench::{banner, f, row, BATCH_SWEEP};
use oaken_model::ModelConfig;

fn systems(two_gpus: bool) -> Vec<(&'static str, SystemModel)> {
    let gpu = if two_gpus {
        AcceleratorSpec::a100_x2()
    } else {
        AcceleratorSpec::a100()
    };
    vec![
        ("vLLM", SystemModel::new(gpu.clone(), QuantPolicy::fp16())),
        (
            "KVQuant",
            SystemModel::new(gpu.clone(), QuantPolicy::kvquant()),
        ),
        ("KIVI", SystemModel::new(gpu.clone(), QuantPolicy::kivi())),
        ("QServe", SystemModel::new(gpu, QuantPolicy::qserve())),
        (
            "Tender",
            SystemModel::new(AcceleratorSpec::tender(), QuantPolicy::tender()),
        ),
        (
            "LPU",
            SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16()),
        ),
        (
            "Oaken-HBM",
            SystemModel::new(AcceleratorSpec::oaken_hbm(), QuantPolicy::oaken()),
        ),
        (
            "Oaken-LPDDR",
            SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()),
        ),
    ]
}

fn show(r: &RunResult) -> String {
    if r.oom {
        "OOM".to_owned()
    } else {
        f(r.throughput, 0)
    }
}

fn main() {
    banner(
        "Figure 11",
        "end-to-end throughput (tokens/s), 1K:1K, batch 16-256",
    );
    let models = [
        (ModelConfig::llama2_7b(), false),
        (ModelConfig::llama2_13b(), false),
        (ModelConfig::mistral_7b(), false),
        (ModelConfig::opt_30b(), true),
        (ModelConfig::mixtral_8x7b(), true),
        (ModelConfig::llama2_70b(), true),
    ];
    for (model, two_gpus) in models {
        println!("\n--- {} ---", model.name);
        let sys = systems(two_gpus);
        let mut header: Vec<&dyn std::fmt::Display> = vec![&"batch"];
        for (name, _) in &sys {
            header.push(name);
        }
        let widths = vec![6usize; header.len()]
            .into_iter()
            .map(|_| 11)
            .collect::<Vec<_>>();
        row(&header, &widths);
        for &b in &BATCH_SWEEP {
            let w = Workload::one_k_one_k(b);
            let cells: Vec<String> = sys.iter().map(|(_, s)| show(&s.run(&model, &w))).collect();
            let mut r: Vec<&dyn std::fmt::Display> = vec![&b];
            for c in &cells {
                r.push(c);
            }
            row(&r, &widths);
        }
    }

    // Headline numbers.
    println!("\n--- headline speedups at batch 256 (average over models) ---");
    let mut vs_vllm = Vec::new();
    let mut vs_qserve = Vec::new();
    for (model, two_gpus) in [
        (ModelConfig::llama2_7b(), false),
        (ModelConfig::llama2_13b(), false),
        (ModelConfig::mistral_7b(), false),
        (ModelConfig::opt_30b(), true),
        (ModelConfig::mixtral_8x7b(), true),
        (ModelConfig::llama2_70b(), true),
    ] {
        let w = Workload::one_k_one_k(256);
        let sys = systems(two_gpus);
        let get = |name: &str| {
            sys.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| s.run(&model, &w))
                .expect("system present")
        };
        let oaken = get("Oaken-LPDDR");
        let vllm = get("vLLM");
        let qserve = get("QServe");
        if !oaken.oom && !vllm.oom && vllm.throughput > 0.0 {
            vs_vllm.push(oaken.throughput / vllm.throughput);
        }
        if !oaken.oom && !qserve.oom && qserve.throughput > 0.0 {
            vs_qserve.push(oaken.throughput / qserve.throughput);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "Oaken-LPDDR vs vLLM:   {:.2}x (paper: 1.79x)",
        mean(&vs_vllm)
    );
    println!(
        "Oaken-LPDDR vs QServe: {:.2}x (paper: 1.58x)",
        mean(&vs_qserve)
    );
    println!();
    println!("Expected shape: GPU baselines saturate at large batch (capacity");
    println!("waves); Oaken-HBM wins small models/batches but OOMs on");
    println!("Mixtral-8x7B and Llama2-70B; Oaken-LPDDR scales to batch 256.");
}

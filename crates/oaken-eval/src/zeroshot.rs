//! Zero-shot multiple-choice scoring: the model (through a possibly lossy
//! KV cache) picks the continuation with the highest sequence
//! log-probability, and accuracy is the fraction of items answered
//! correctly — the scoring rule used for PIQA / Winogrande / Hellaswag.

use crate::datasets::McqTask;
use oaken_model::{KvCacheBackend, Model};
use oaken_tensor::log_softmax;

/// Scores one `(prompt, continuation)` pair: `Σ log p(cont_i | prefix)`.
fn continuation_logprob<'m>(
    model: &'m Model,
    cache: Box<dyn KvCacheBackend + 'm>,
    prompt: &[u32],
    cont: &[u32],
) -> f64 {
    let mut session = model.session(cache);
    let mut logits = session.prefill(prompt);
    let mut total = 0.0f64;
    for &tok in cont {
        let lsm = log_softmax(&logits);
        total += f64::from(lsm[tok as usize]);
        logits = session.advance(tok);
    }
    total
}

/// Zero-shot accuracy (%) over a task set, each choice evaluated with a
/// fresh cache from `make_cache`.
///
/// # Panics
///
/// Panics if `tasks` is empty.
#[allow(clippy::needless_lifetimes)]
pub fn mcq_accuracy<'m, F>(model: &'m Model, mut make_cache: F, tasks: &[McqTask]) -> f64
where
    F: FnMut() -> Box<dyn KvCacheBackend + 'm>,
{
    assert!(!tasks.is_empty(), "task set must not be empty");
    let mut correct = 0usize;
    for task in tasks {
        let mut best = f64::NEG_INFINITY;
        let mut best_idx = 0usize;
        for (i, choice) in task.choices.iter().enumerate() {
            let lp = continuation_logprob(model, make_cache(), &task.prompt, choice);
            if lp > best {
                best = lp;
                best_idx = i;
            }
        }
        if best_idx == task.correct {
            correct += 1;
        }
    }
    100.0 * correct as f64 / tasks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{McqSpec, SyntheticDatasets};
    use oaken_model::{ExactCache, Model, ModelConfig};

    #[test]
    fn fp32_model_beats_chance_on_its_own_tasks() {
        let m = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 17);
        let spec = McqSpec {
            num_tasks: 10,
            prompt_len: 8,
            cont_len: 4,
            num_choices: 2,
            seed: 3,
        };
        let tasks = SyntheticDatasets::new(&m).mcq(&spec);
        let acc = mcq_accuracy(&m, || Box::new(ExactCache::new()), &tasks);
        assert!(acc >= 70.0, "FP32 should ace self-generated tasks: {acc}%");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty_task_sets() {
        let m = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 17);
        mcq_accuracy(&m, || Box::new(ExactCache::new()), &[]);
    }
}

//! Synthetic dataset generation: perplexity corpora and MCQ task sets,
//! sampled from the FP32 proxy model itself (see the crate-level
//! methodology note).

use oaken_model::{sample_temperature, ExactCache, Model};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a perplexity corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Number of sequences.
    pub num_seqs: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
    /// Sampling temperature (lower ⇒ more predictable corpus ⇒ lower
    /// baseline perplexity).
    pub temperature: f32,
    /// Sampling seed.
    pub seed: u64,
}

impl CorpusSpec {
    /// A Wikitext2-like corpus: the most predictable of the four.
    pub fn wikitext() -> Self {
        Self {
            num_seqs: 12,
            seq_len: 72,
            temperature: 0.6,
            seed: 101,
        }
    }
}

/// Parameters of an MCQ task set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McqSpec {
    /// Number of items.
    pub num_tasks: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Continuation length in tokens.
    pub cont_len: usize,
    /// Choices per item (PIQA/Winogrande: 2, Hellaswag: 4).
    pub num_choices: usize,
    /// Generation seed.
    pub seed: u64,
}

impl McqSpec {
    /// PIQA-like: 2 choices.
    pub fn piqa() -> Self {
        Self {
            num_tasks: 24,
            prompt_len: 20,
            cont_len: 6,
            num_choices: 2,
            seed: 211,
        }
    }

    /// Winogrande-like: 2 choices, shorter prompts.
    pub fn winogrande() -> Self {
        Self {
            num_tasks: 24,
            prompt_len: 12,
            cont_len: 5,
            num_choices: 2,
            seed: 307,
        }
    }

    /// Hellaswag-like: 4 choices.
    pub fn hellaswag() -> Self {
        Self {
            num_tasks: 20,
            prompt_len: 24,
            cont_len: 8,
            num_choices: 4,
            seed: 401,
        }
    }
}

/// One multiple-choice item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McqTask {
    /// Prompt tokens.
    pub prompt: Vec<u32>,
    /// Candidate continuations.
    pub choices: Vec<Vec<u32>>,
    /// Index of the correct continuation.
    pub correct: usize,
}

/// Generator for all synthetic evaluation data of one proxy model.
#[derive(Debug)]
pub struct SyntheticDatasets<'m> {
    model: &'m Model,
}

impl<'m> SyntheticDatasets<'m> {
    /// Creates a generator bound to the FP32 proxy model.
    pub fn new(model: &'m Model) -> Self {
        Self { model }
    }

    /// Samples a perplexity corpus from the model.
    pub fn corpus(&self, spec: &CorpusSpec) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let vocab = self.model.config().vocab_size as u32;
        (0..spec.num_seqs)
            .map(|_| {
                let mut seq = vec![rng.gen_range(0..vocab)];
                let mut session = self.model.session(Box::new(ExactCache::new()));
                let mut logits = session.advance(seq[0]);
                while seq.len() < spec.seq_len {
                    let tok = sample_temperature(&logits, spec.temperature, &mut rng);
                    seq.push(tok);
                    if seq.len() < spec.seq_len {
                        logits = session.advance(tok);
                    }
                }
                seq
            })
            .collect()
    }

    /// Generates an MCQ task set. The correct continuation is the model's
    /// near-greedy continuation of the prompt; distractors are
    /// *same-prompt* continuations sampled at high temperature — plausible
    /// in context but lower-probability, so the FP32 model ranks the
    /// correct answer first by a margin that KV-cache quantization can
    /// erode (the Table 2 sensitivity mechanism).
    pub fn mcq(&self, spec: &McqSpec) -> Vec<McqTask> {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let vocab = self.model.config().vocab_size as u32;
        let gen_seq = |prompt: &[u32], len: usize, temp: f32, rng: &mut StdRng| {
            let mut session = self.model.session(Box::new(ExactCache::new()));
            let mut logits = session.prefill(prompt);
            let mut cont = Vec::with_capacity(len);
            for _ in 0..len {
                let tok = sample_temperature(&logits, temp, rng);
                cont.push(tok);
                logits = session.advance(tok);
            }
            cont
        };
        (0..spec.num_tasks)
            .map(|_| {
                let prompt: Vec<u32> = (0..spec.prompt_len)
                    .map(|_| rng.gen_range(0..vocab))
                    .collect();
                let correct_cont = gen_seq(&prompt, spec.cont_len, 0.3, &mut rng);
                let mut choices = Vec::with_capacity(spec.num_choices);
                let correct = rng.gen_range(0..spec.num_choices);
                for c in 0..spec.num_choices {
                    if c == correct {
                        choices.push(correct_cont.clone());
                    } else {
                        // Distractor: same prompt, hotter sampling; reroll
                        // collisions with the correct continuation.
                        let mut distractor = gen_seq(&prompt, spec.cont_len, 1.0, &mut rng);
                        while distractor == correct_cont {
                            distractor = gen_seq(&prompt, spec.cont_len, 1.6, &mut rng);
                        }
                        choices.push(distractor);
                    }
                }
                McqTask {
                    prompt,
                    choices,
                    correct,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_model::ModelConfig;

    fn model() -> Model {
        Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 11)
    }

    #[test]
    fn corpus_has_requested_shape() {
        let m = model();
        let spec = CorpusSpec {
            num_seqs: 3,
            seq_len: 10,
            temperature: 0.7,
            seed: 5,
        };
        let corpus = SyntheticDatasets::new(&m).corpus(&spec);
        assert_eq!(corpus.len(), 3);
        assert!(corpus.iter().all(|s| s.len() == 10));
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let m = model();
        let spec = CorpusSpec {
            num_seqs: 2,
            seq_len: 8,
            temperature: 0.7,
            seed: 9,
        };
        let a = SyntheticDatasets::new(&m).corpus(&spec);
        let b = SyntheticDatasets::new(&m).corpus(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn mcq_tasks_well_formed() {
        let m = model();
        let spec = McqSpec {
            num_tasks: 4,
            prompt_len: 6,
            cont_len: 3,
            num_choices: 3,
            seed: 2,
        };
        let tasks = SyntheticDatasets::new(&m).mcq(&spec);
        assert_eq!(tasks.len(), 4);
        for t in &tasks {
            assert_eq!(t.prompt.len(), 6);
            assert_eq!(t.choices.len(), 3);
            assert!(t.correct < 3);
            assert!(t.choices.iter().all(|c| c.len() == 3));
        }
    }

    #[test]
    fn specs_have_paper_choice_counts() {
        assert_eq!(McqSpec::piqa().num_choices, 2);
        assert_eq!(McqSpec::winogrande().num_choices, 2);
        assert_eq!(McqSpec::hellaswag().num_choices, 4);
    }
}

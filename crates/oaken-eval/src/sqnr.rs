//! Elementwise quantization-error metrics.

/// Mean squared error between a reference and its reconstruction.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(reference: &[f32], reconstruction: &[f32]) -> f64 {
    assert_eq!(reference.len(), reconstruction.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty input");
    reference
        .iter()
        .zip(reconstruction)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / reference.len() as f64
}

/// Signal-to-quantization-noise ratio in dB:
/// `10 log10(Σ x² / Σ (x − x̂)²)`. Returns `f64::INFINITY` for an exact
/// reconstruction.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn sqnr_db(reference: &[f32], reconstruction: &[f32]) -> f64 {
    let signal: f64 = reference.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    let noise: f64 = reference
        .iter()
        .zip(reconstruction)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum();
    assert_eq!(reference.len(), reconstruction.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty input");
    if noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal / noise).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let x = [1.0, -2.0, 3.0];
        assert_eq!(mse(&x, &x), 0.0);
        assert_eq!(sqnr_db(&x, &x), f64::INFINITY);
    }

    #[test]
    fn mse_known_value() {
        let a = [0.0, 0.0];
        let b = [1.0, -1.0];
        assert_eq!(mse(&a, &b), 1.0);
    }

    #[test]
    fn sqnr_improves_with_better_reconstruction() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let coarse = [1.5, 1.5, 3.5, 3.5];
        let fine = [1.1, 2.1, 2.9, 3.9];
        assert!(sqnr_db(&x, &fine) > sqnr_db(&x, &coarse));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn checks_lengths() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}

//! Evaluation harness for the Oaken reproduction: synthetic datasets,
//! perplexity, zero-shot accuracy, KV-distribution probes, and
//! quantization-error metrics.
//!
//! # Methodology note (dataset substitution)
//!
//! The paper evaluates on Wikitext2 (perplexity) and PIQA / Winogrande /
//! Hellaswag (zero-shot accuracy) with pretrained checkpoints. Neither the
//! checkpoints nor the datasets are available here, so the harness measures
//! the *same quantity Table 2 actually compares* — degradation relative to
//! the full-precision run of the same model — using model-generated data:
//!
//! * **perplexity corpora** are sequences sampled from the FP32 proxy model
//!   at moderate temperature. The FP32 model assigns them low perplexity by
//!   construction; KV-cache quantization perturbs attention and measurably
//!   raises it. Different "datasets" use different sampling seeds and
//!   temperatures (Wikitext2-like is the lowest-temperature, most
//!   predictable corpus).
//! * **MCQ tasks** pair a prompt with its own high-likelihood continuation
//!   (correct answer) and low-likelihood distractors; accuracy is whether
//!   the (quantized) model still ranks the correct continuation first by
//!   sequence log-probability — the standard zero-shot scoring rule.
//!
//! This preserves exactly what the paper's accuracy experiment isolates:
//! the error introduced by each KV-cache quantizer.
//!
//! Beyond accuracy, [`harness::profile_oaken`] is the shared offline-phase
//! recipe (observe a model's real KV vectors through the session observer
//! hook, then freeze thresholds) that the serving engine, the benches, and
//! the Table 2 harness all use — so every part of the repo quantizes with
//! thresholds profiled the way §4.2 describes.

pub mod datasets;
pub mod distribution;
pub mod harness;
pub mod perplexity;
pub mod sqnr;
pub mod zeroshot;

pub use datasets::{CorpusSpec, McqSpec, McqTask, SyntheticDatasets};
pub use distribution::{channel_concentration, kv_layer_ranges, LayerRange};
pub use harness::{profile_oaken, AccuracyRow, EvalHarness};
pub use perplexity::{perplexity, sequence_logprob};
pub use sqnr::{mse, sqnr_db};
pub use zeroshot::mcq_accuracy;

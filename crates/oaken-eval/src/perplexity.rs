//! Perplexity measurement through a (possibly quantized) KV cache.

use oaken_model::{KvCacheBackend, Model};
use oaken_tensor::log_softmax;

/// Log-probability of `tokens[1..]` under the model given `tokens[..n-1]`,
/// running through the supplied cache backend.
///
/// Returns the summed natural-log probability and the number of predicted
/// tokens.
///
/// # Panics
///
/// Panics if `tokens.len() < 2`.
pub fn sequence_logprob(
    model: &Model,
    cache: Box<dyn KvCacheBackend + '_>,
    tokens: &[u32],
) -> (f64, usize) {
    assert!(tokens.len() >= 2, "need at least two tokens for prediction");
    let mut session = model.session(cache);
    let mut total = 0.0f64;
    let mut logits = session.advance(tokens[0]);
    for &next in &tokens[1..] {
        let lsm = log_softmax(&logits);
        total += f64::from(lsm[next as usize]);
        logits = session.advance(next);
    }
    (total, tokens.len() - 1)
}

/// Corpus perplexity: `exp(−mean log p)` over all predicted tokens of all
/// sequences, each evaluated with a fresh cache from `make_cache`.
///
/// # Panics
///
/// Panics if the corpus is empty or any sequence is shorter than 2 tokens.
#[allow(clippy::needless_lifetimes)]
pub fn perplexity<'m, F>(model: &'m Model, mut make_cache: F, corpus: &[Vec<u32>]) -> f64
where
    F: FnMut() -> Box<dyn KvCacheBackend + 'm>,
{
    assert!(!corpus.is_empty(), "corpus must not be empty");
    let mut total = 0.0f64;
    let mut count = 0usize;
    for seq in corpus {
        let (lp, n) = sequence_logprob(model, make_cache(), seq);
        total += lp;
        count += n;
    }
    (-total / count as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_model::{sample_greedy, ExactCache, Model, ModelConfig};

    fn model() -> Model {
        Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 3)
    }

    #[test]
    fn greedy_sequences_have_low_perplexity() {
        let m = model();
        // Build a greedy self-generated sequence: the model should assign it
        // near-maximal probability.
        let mut session = m.session(Box::new(ExactCache::new()));
        let mut seq = vec![7u32];
        let mut logits = session.advance(7);
        for _ in 0..24 {
            let t = sample_greedy(&logits);
            seq.push(t);
            logits = session.advance(t);
        }
        let ppl = perplexity(&m, || Box::new(ExactCache::new()), &[seq]);
        assert!(
            ppl < 16.0,
            "self-generated greedy text should be predictable: ppl={ppl}"
        );
    }

    #[test]
    fn random_sequences_have_high_perplexity() {
        let m = model();
        let vocab = m.config().vocab_size as u32;
        let random: Vec<u32> = (0..32).map(|i| (i * 97 + 13) % vocab).collect();
        let mut greedy_seq = vec![7u32];
        let mut session = m.session(Box::new(ExactCache::new()));
        let mut logits = session.advance(7);
        for _ in 0..31 {
            let t = sample_greedy(&logits);
            greedy_seq.push(t);
            logits = session.advance(t);
        }
        let ppl_random = perplexity(&m, || Box::new(ExactCache::new()), &[random]);
        let ppl_greedy = perplexity(&m, || Box::new(ExactCache::new()), &[greedy_seq]);
        assert!(
            ppl_random > ppl_greedy * 2.0,
            "random {ppl_random} vs greedy {ppl_greedy}"
        );
    }

    #[test]
    fn logprob_counts_predictions() {
        let m = model();
        let (_, n) = sequence_logprob(&m, Box::new(ExactCache::new()), &[1, 2, 3, 4]);
        assert_eq!(n, 3);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_token_sequences() {
        let m = model();
        sequence_logprob(&m, Box::new(ExactCache::new()), &[1]);
    }
}

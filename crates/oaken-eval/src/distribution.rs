//! KV-distribution probes reproducing the §4.1 observations (Figure 6):
//! per-layer min/max ranges, cross-dataset consistency, and the
//! concentration of top-magnitude values in a few channels.

use oaken_core::KvKind;
use oaken_model::{ExactCache, Model};
use oaken_tensor::MinMax;
use std::cell::RefCell;
use std::rc::Rc;

/// Observed value range of one layer's keys or values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerRange {
    /// Decoder layer index.
    pub layer: usize,
    /// Range of key values.
    pub key: MinMax,
    /// Range of value values.
    pub value: MinMax,
}

/// Runs the model over `sequences` and returns per-layer KV ranges —
/// the data behind Figure 6(a)/(b).
pub fn kv_layer_ranges(model: &Model, sequences: &[Vec<u32>]) -> Vec<LayerRange> {
    let num_layers = model.config().num_layers;
    let ranges: Rc<RefCell<Vec<(MinMax, MinMax)>>> =
        Rc::new(RefCell::new(vec![
            (MinMax::default(), MinMax::default());
            num_layers
        ]));
    for seq in sequences {
        let mut session = model.session(Box::new(ExactCache::new()));
        let r = Rc::clone(&ranges);
        session.set_kv_observer(Box::new(move |layer, kind, values| {
            if let Some(mm) = MinMax::of(values) {
                let mut borrow = r.borrow_mut();
                let slot = &mut borrow[layer];
                match kind {
                    KvKind::Key => slot.0 = slot.0.merge(&mm),
                    KvKind::Value => slot.1 = slot.1.merge(&mm),
                }
            }
        }));
        for &tok in seq {
            session.advance(tok);
        }
    }
    let borrow = ranges.borrow();
    borrow
        .iter()
        .enumerate()
        .map(|(layer, &(key, value))| LayerRange { layer, key, value })
        .collect()
}

/// Collects the full key matrix of one layer over a sequence, then measures
/// how concentrated the top-`frac` magnitude values are in channels — the
/// Figure 6(c) probe. Returns `(channel_share, channels_hit)` where
/// `channel_share` is the fraction of top values living in the most-hit 10%
/// of channels.
pub fn channel_concentration(
    model: &Model,
    sequence: &[u32],
    layer: usize,
    frac: f64,
) -> (f64, usize) {
    let kv_dim = model.config().kv_dim();
    let rows: Rc<RefCell<Vec<f32>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let mut session = model.session(Box::new(ExactCache::new()));
        let r = Rc::clone(&rows);
        session.set_kv_observer(Box::new(move |l, kind, values| {
            if l == layer && kind == KvKind::Key {
                r.borrow_mut().extend_from_slice(values);
            }
        }));
        for &tok in sequence {
            session.advance(tok);
        }
    }
    let data = rows.borrow();
    let n = data.len();
    if n == 0 {
        return (0.0, 0);
    }
    // Threshold for the top-frac magnitudes.
    let mut mags: Vec<f32> = data.iter().map(|v| v.abs()).collect();
    mags.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
    let k = ((n as f64 * frac).round() as usize).clamp(1, n);
    let thr = mags[k - 1];
    // Count hits per channel.
    let mut per_channel = vec![0usize; kv_dim];
    for (i, v) in data.iter().enumerate() {
        if v.abs() >= thr {
            per_channel[i % kv_dim] += 1;
        }
    }
    let total_hits: usize = per_channel.iter().sum();
    let channels_hit = per_channel.iter().filter(|&&c| c > 0).count();
    // Share of hits captured by the most-hit 10% of channels.
    let mut sorted = per_channel.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top10 = (kv_dim / 10).max(1);
    let captured: usize = sorted[..top10].iter().sum();
    (captured as f64 / total_hits.max(1) as f64, channels_hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_model::ModelConfig;

    fn model() -> Model {
        Model::synthetic(ModelConfig::llama2_7b().proxy(4, 64), 23)
    }

    fn seq(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| (i * 31 + 5) % 256).collect()
    }

    #[test]
    fn ranges_cover_all_layers() {
        let m = model();
        let ranges = kv_layer_ranges(&m, &[seq(12)]);
        assert_eq!(ranges.len(), 4);
        for r in &ranges {
            assert!(r.key.min < r.key.max, "layer {} key range", r.layer);
            assert!(r.value.min < r.value.max);
        }
    }

    #[test]
    fn observation1_layers_differ() {
        // Per-layer ranges should vary noticeably (Observation 1).
        let m = model();
        let ranges = kv_layer_ranges(&m, &[seq(16)]);
        let widths: Vec<f32> = ranges.iter().map(|r| r.key.range()).collect();
        let min = widths.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = widths.iter().cloned().fold(0.0f32, f32::max);
        assert!(max / min > 1.2, "ranges: {widths:?}");
    }

    #[test]
    fn observation2_datasets_consistent() {
        // Two different input distributions → similar per-layer ranges
        // (Observation 2: input-independence).
        let m = model();
        let a = kv_layer_ranges(&m, &[seq(16)]);
        let b_seq: Vec<u32> = (0..16u32).map(|i| (i * 113 + 77) % 256).collect();
        let b = kv_layer_ranges(&m, &[b_seq]);
        for (ra, rb) in a.iter().zip(&b) {
            let ratio = f64::from(ra.key.range()) / f64::from(rb.key.range()).max(1e-9);
            assert!(
                (0.4..2.5).contains(&ratio),
                "layer {} ranges diverge: {ratio}",
                ra.layer
            );
        }
    }

    #[test]
    fn observation3_outliers_concentrate_in_channels() {
        let m = model();
        let (share, hit) = channel_concentration(&m, &seq(24), 1, 0.04);
        // The top 10% of channels should capture well over 10% of the
        // top-magnitude values (channel concentration), but not all of them
        // (exceptions exist).
        assert!(share > 0.3, "share {share}");
        assert!(hit > 1, "more than one channel should be hit: {hit}");
    }

    #[test]
    fn empty_layer_yields_zero() {
        let m = model();
        let (share, hit) = channel_concentration(&m, &[], 0, 0.04);
        assert_eq!(share, 0.0);
        assert_eq!(hit, 0);
    }
}

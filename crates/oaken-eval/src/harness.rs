//! The Table 2 harness: ties profiling, datasets, and quantized inference
//! together into per-method accuracy rows.

use crate::datasets::{CorpusSpec, McqSpec, McqTask, SyntheticDatasets};
use crate::perplexity::perplexity;
use crate::zeroshot::mcq_accuracy;
use oaken_core::{KvQuantizer, OakenConfig, OakenQuantizer, OfflineProfiler};
use oaken_model::{ExactCache, KvCacheBackend, Model, QuantizedCache};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Runs Oaken's offline threshold profiling on a proxy model by attaching
/// the profiler to the KV observer over `num_seqs` random sample prompts
/// (§4.3: "approximately a hundred offline inferences").
pub fn profile_oaken(
    model: &Model,
    config: OakenConfig,
    num_seqs: usize,
    seq_len: usize,
    seed: u64,
) -> OakenQuantizer {
    let profiler = Rc::new(RefCell::new(OfflineProfiler::new(
        config.clone(),
        model.config().num_layers,
    )));
    let vocab = model.config().vocab_size as u64;
    for s in 0..num_seqs {
        let mut session = model.session(Box::new(ExactCache::new()));
        let p = Rc::clone(&profiler);
        session.set_kv_observer(Box::new(move |layer, kind, values| {
            p.borrow_mut().observe(layer, kind, values);
        }));
        for i in 0..seq_len {
            let mix = ((s * seq_len + i) as u64).wrapping_mul(1442695040888963407);
            let tok = ((seed.wrapping_mul(6364136223846793005).wrapping_add(mix)) >> 33) % vocab;
            session.advance(tok as u32);
        }
    }
    let thresholds = Rc::try_unwrap(profiler)
        .expect("all observer clones dropped with their sessions")
        .into_inner()
        .finish();
    OakenQuantizer::new(config, thresholds)
}

/// One accuracy row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Method name ("fp32", "oaken", "kivi", ...).
    pub method: String,
    /// Wikitext2-like perplexity (lower is better).
    pub perplexity: f64,
    /// PIQA-like zero-shot accuracy (%).
    pub piqa: f64,
    /// Winogrande-like zero-shot accuracy (%).
    pub winogrande: f64,
    /// Hellaswag-like zero-shot accuracy (%).
    pub hellaswag: f64,
    /// Nominal effective bits per KV element.
    pub effective_bits: f64,
}

impl AccuracyRow {
    /// Mean zero-shot accuracy across the three task sets.
    pub fn mean_accuracy(&self) -> f64 {
        (self.piqa + self.winogrande + self.hellaswag) / 3.0
    }
}

/// Evaluation-size knobs. The defaults match the bench binaries; `quick()`
/// keeps unit tests fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSpec {
    /// Perplexity corpus parameters.
    pub corpus: CorpusSpec,
    /// PIQA-like task parameters.
    pub piqa: McqSpec,
    /// Winogrande-like task parameters.
    pub winogrande: McqSpec,
    /// Hellaswag-like task parameters.
    pub hellaswag: McqSpec,
}

impl EvalSpec {
    /// Bench-scale evaluation.
    pub fn paper() -> Self {
        Self {
            corpus: CorpusSpec::wikitext(),
            piqa: McqSpec::piqa(),
            winogrande: McqSpec::winogrande(),
            hellaswag: McqSpec::hellaswag(),
        }
    }

    /// Reduced sizes for unit tests.
    pub fn quick() -> Self {
        Self {
            corpus: CorpusSpec {
                num_seqs: 3,
                seq_len: 24,
                temperature: 0.6,
                seed: 101,
            },
            piqa: McqSpec {
                num_tasks: 5,
                prompt_len: 8,
                cont_len: 4,
                num_choices: 2,
                seed: 211,
            },
            winogrande: McqSpec {
                num_tasks: 5,
                prompt_len: 6,
                cont_len: 3,
                num_choices: 2,
                seed: 307,
            },
            hellaswag: McqSpec {
                num_tasks: 4,
                prompt_len: 8,
                cont_len: 4,
                num_choices: 4,
                seed: 401,
            },
        }
    }
}

impl Default for EvalSpec {
    fn default() -> Self {
        Self::paper()
    }
}

/// Pre-generated datasets for one proxy model, reused across all methods so
/// every quantizer is graded on identical data.
pub struct EvalHarness<'m> {
    model: &'m Model,
    corpus: Vec<Vec<u32>>,
    piqa: Vec<McqTask>,
    winogrande: Vec<McqTask>,
    hellaswag: Vec<McqTask>,
    kv_dim: usize,
}

impl std::fmt::Debug for EvalHarness<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalHarness")
            .field("model", &self.model.config().name)
            .field("corpus_seqs", &self.corpus.len())
            .finish()
    }
}

impl<'m> EvalHarness<'m> {
    /// Generates all datasets from the FP32 model.
    pub fn new(model: &'m Model, spec: &EvalSpec) -> Self {
        let gen = SyntheticDatasets::new(model);
        Self {
            corpus: gen.corpus(&spec.corpus),
            piqa: gen.mcq(&spec.piqa),
            winogrande: gen.mcq(&spec.winogrande),
            hellaswag: gen.mcq(&spec.hellaswag),
            kv_dim: model.config().kv_dim(),
            model,
        }
    }

    /// Evaluates one method. `None` runs the lossless FP32 reference.
    pub fn evaluate(&self, method: Option<Arc<dyn KvQuantizer>>) -> AccuracyRow {
        let name = method.as_ref().map_or("fp32", |m| m.name()).to_owned();
        let effective_bits = method
            .as_ref()
            .map_or(32.0, |m| m.effective_bits(1024, self.kv_dim));
        let make_cache = || -> Box<dyn KvCacheBackend + 'm> {
            match &method {
                None => Box::new(ExactCache::new()),
                Some(q) => Box::new(QuantizedCache::new(Arc::clone(q))),
            }
        };
        AccuracyRow {
            method: name,
            perplexity: perplexity(self.model, make_cache, &self.corpus),
            piqa: mcq_accuracy(self.model, make_cache, &self.piqa),
            winogrande: mcq_accuracy(self.model, make_cache, &self.winogrande),
            hellaswag: mcq_accuracy(self.model, make_cache, &self.hellaswag),
            effective_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_model::ModelConfig;

    #[test]
    fn oaken_profiling_covers_all_layers() {
        let model = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 5);
        let q = profile_oaken(&model, OakenConfig::default(), 4, 16, 99);
        assert_eq!(q.thresholds().num_layers(), 2);
        for (_, lt) in q.thresholds().iter() {
            assert!(lt.key.validate().is_ok());
            assert!(lt.value.validate().is_ok());
        }
    }

    #[test]
    fn fp32_row_is_the_reference() {
        let model = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 5);
        let h = EvalHarness::new(&model, &EvalSpec::quick());
        let row = h.evaluate(None);
        assert_eq!(row.method, "fp32");
        assert!(row.perplexity.is_finite() && row.perplexity > 1.0);
        assert!(row.mean_accuracy() >= 50.0, "{row:?}");
        assert_eq!(row.effective_bits, 32.0);
    }

    #[test]
    fn oaken_row_close_to_fp32() {
        let model = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 5);
        let h = EvalHarness::new(&model, &EvalSpec::quick());
        let fp32 = h.evaluate(None);
        let oaken = profile_oaken(&model, OakenConfig::default(), 6, 24, 99);
        let row = h.evaluate(Some(Arc::new(oaken)));
        assert_eq!(row.method, "oaken");
        // Perplexity degradation should be modest (paper: ~1% relative).
        assert!(
            row.perplexity < fp32.perplexity * 1.35,
            "oaken {} vs fp32 {}",
            row.perplexity,
            fp32.perplexity
        );
    }
}

//! Cluster acceptance suite: the disaggregated cluster must produce
//! **bit-identical token streams** to a monolithic engine (and to the
//! service-clock direct replay) at every replica count, routing policy,
//! and transfer cost — timing is allowed to move, bits are not — and the
//! affinity router must never reuse fewer prefix tokens than round-robin
//! on the same schedule.

use oaken_cluster::{
    run_cluster, run_monolithic, ClusterConfig, ClusterReport, EngineRole, RouterPolicy,
};
use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{Model, ModelConfig, PagedKvPool};
use oaken_service::workload::replay_open_loop_direct;
use oaken_serving::{
    AdmissionPolicy, EngineConfig, EngineRequest, PreemptPolicy, RequestOutcome, TokenScheduler,
};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

fn profiled_oaken(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 6, 8, 5))
}

/// Quantized pool with a host tier and small trie blocks, the same
/// geometry for every engine in a run.
fn pool(model: &Model, quantizer: &Arc<dyn KvQuantizer>, pages: u32, host: u32) -> PagedKvPool {
    let mut pool = PagedKvPool::for_model(model.config(), Some(quantizer.clone()), pages, 512);
    pool.set_host_pages(host);
    pool.set_block_tokens(8);
    pool
}

fn engine_config(threads: usize, preempt: PreemptPolicy) -> EngineConfig {
    EngineConfig {
        max_batch: 4,
        admission: AdmissionPolicy::PromptOnly,
        preempt,
        prefill_token_budget: 8,
        num_threads: threads,
        ..EngineConfig::default()
    }
}

/// A prompt in family `f`: families share nothing across them (distinct
/// token ranges), while members of one family share their whole prefix.
fn family_prompt(f: u64, len: usize) -> Vec<u32> {
    (0..len as u32)
        .map(|i| (f as u32 * 61 + i * 3) % 256)
        .collect()
}

fn cluster_cfg(engine: EngineConfig) -> ClusterConfig {
    ClusterConfig {
        work_tokens_per_tick: 8,
        scheduler_cores: 4,
        ..ClusterConfig::new(engine)
    }
}

/// Runs the same schedule through the cluster, the monolithic
/// comparator, and the bare-engine service replay; asserts all three
/// produce identical per-request token streams and outcomes.
fn assert_bit_exact(
    model: &Model,
    quantizer: &Arc<dyn KvQuantizer>,
    cfg: &ClusterConfig,
    pages: u32,
    schedule: &[(EngineRequest, u64)],
) -> (ClusterReport, ClusterReport) {
    let mut mk = |_role: EngineRole, _r: usize| pool(model, quantizer, pages, pages);
    let cluster = run_cluster(model, cfg, &mut mk, schedule.to_vec(), &[]);
    let mono = run_monolithic(model, cfg, &mut mk, schedule.to_vec(), &[]);
    let direct = replay_open_loop_direct(
        model,
        pool(model, quantizer, pages, pages),
        TokenScheduler::new(cfg.scheduler_cores),
        cfg.engine,
        schedule.to_vec(),
        &[],
    );
    assert_eq!(cluster.requests.len(), schedule.len());
    assert_eq!(mono.requests.len(), schedule.len());
    for (req, _) in schedule {
        let c = cluster.request(req.id);
        let m = mono.request(req.id);
        let d = direct.timing_for(req.id);
        assert_eq!(c.tokens, m.tokens, "cluster vs monolithic, id {}", req.id);
        assert_eq!(
            c.tokens, d.tokens,
            "cluster vs direct replay, id {}",
            req.id
        );
        assert_eq!(c.outcome, RequestOutcome::Finished);
        assert_eq!(c.tokens.len(), req.max_new_tokens);
    }
    (cluster, mono)
}

#[test]
fn cluster_token_streams_match_monolithic_and_direct_replay() {
    let model = tiny_model();
    let q = profiled_oaken(&model);
    let mut cfg = cluster_cfg(engine_config(2, PreemptPolicy::SwapToHost));
    cfg.replicas = 2;
    cfg.router = RouterPolicy::Affinity;
    cfg.transfer_bytes_per_tick = 64;
    // Two prefix families plus a singleton, staggered arrivals, one
    // single-token request (must not be disaggregated).
    let schedule = vec![
        (EngineRequest::new(1, family_prompt(1, 24), 5), 0),
        (EngineRequest::new(2, family_prompt(2, 17), 4), 3),
        (EngineRequest::new(3, family_prompt(1, 29), 6), 14),
        (EngineRequest::new(4, family_prompt(3, 9), 1), 15),
        (EngineRequest::new(5, family_prompt(2, 21), 3), 22),
    ];
    let (cluster, mono) = assert_bit_exact(&model, &q, &cfg, 320, &schedule);

    // Four requests took the disaggregated path; the 1-token request ran
    // wholly on its prefill engine.
    assert_eq!(cluster.transfer.transfers, 4);
    assert!(cluster.transfer.wire_bytes > 0);
    assert!(cluster.request(4).ttft().is_some());
    assert!(!cluster.request(4).disaggregated);
    assert!(cluster.request(1).disaggregated);
    let exported: u64 = cluster.prefill_stats.iter().map(|s| s.exports).sum();
    let imported: u64 = cluster.decode_stats.iter().map(|s| s.imports).sum();
    assert_eq!(exported, 4);
    assert_eq!(imported, 4);
    // The monolithic comparator never touched a link.
    assert_eq!(mono.transfer.transfers, 0);
    assert!(mono.decode_stats.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole determinism property: any (replicas, policy,
    /// transfer cost, threads, preempt) cluster generates the same
    /// per-request token bits as the monolithic engine and the direct
    /// service replay of the same schedule.
    #[test]
    fn cluster_is_bit_exact_with_monolithic_at_any_config(
        replicas in 1usize..5,
        threads in prop::sample::select(vec![1usize, 2]),
        swap in any::<bool>(),
        policy in prop::sample::select(vec![
            RouterPolicy::Affinity,
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
        ]),
        bytes_per_tick in prop::sample::select(vec![0u64, 16, 400]),
        work in prop::sample::select(vec![1u64, 8, 64]),
        reqs in prop::collection::vec((1u64..5, 6usize..31, 1usize..7, 0u64..31), 2..7),
    ) {
        let model = tiny_model();
        let q = profiled_oaken(&model);
        let preempt = if swap { PreemptPolicy::SwapToHost } else { PreemptPolicy::RestartRecompute };
        let mut cfg = cluster_cfg(engine_config(threads, preempt));
        cfg.replicas = replicas;
        cfg.router = policy;
        cfg.transfer_bytes_per_tick = bytes_per_tick;
        cfg.work_tokens_per_tick = work;
        let schedule: Vec<(EngineRequest, u64)> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(fam, len, max_new, arrival))| {
                (EngineRequest::new(i as u64 + 1, family_prompt(fam, len), max_new), arrival)
            })
            .collect();
        assert_bit_exact(&model, &q, &cfg, 320, &schedule);
    }

    /// The routing property: on disjoint prefix families arriving close
    /// enough to overlap in flight (trie blocks live only while
    /// referenced), affinity placement never adopts fewer prefix tokens
    /// than round-robin placement of the same schedule.
    #[test]
    fn affinity_never_reuses_fewer_tokens_than_round_robin(
        replicas in 2usize..4,
        fams in prop::collection::vec((1u64..4, 16usize..33), 4..9),
    ) {
        let model = tiny_model();
        let q = profiled_oaken(&model);
        let schedule: Vec<(EngineRequest, u64)> = fams
            .iter()
            .enumerate()
            .map(|(i, &(fam, len))| {
                (EngineRequest::new(i as u64 + 1, family_prompt(fam, len), 3), i as u64 * 2)
            })
            .collect();
        let reuse = |policy: RouterPolicy| {
            let mut cfg = cluster_cfg(engine_config(1, PreemptPolicy::SwapToHost));
            cfg.replicas = replicas;
            cfg.router = policy;
            let mut mk = |_role: EngineRole, _r: usize| pool(&model, &q, 320, 448);
            run_cluster(&model, &cfg, &mut mk, schedule.clone(), &[]).tokens_reused()
        };
        let affinity = reuse(RouterPolicy::Affinity);
        let round_robin = reuse(RouterPolicy::RoundRobin);
        prop_assert!(
            affinity >= round_robin,
            "affinity reused {affinity} < round-robin {round_robin}"
        );
    }
}

/// Satellite: the fixed 3-replica, 2-prefix-family acceptance run with
/// pinned placement decisions.
#[test]
fn three_replica_two_family_placements_are_pinned() {
    let model = tiny_model();
    let q = profiled_oaken(&model);
    let mut cfg = cluster_cfg(engine_config(1, PreemptPolicy::SwapToHost));
    cfg.replicas = 3;
    cfg.router = RouterPolicy::Affinity;
    // Trie blocks live only while some sequence references them, so
    // prefix families must *overlap in flight* to be routable — the
    // realistic shape of a shared system prompt under load. Heads of
    // families A and B arrive together; followers arrive while their
    // predecessor is still prefilling (with an 8-token budget and
    // 8 tokens of work per tick, a 24-token head has sealed its two
    // shared blocks — 16 tokens — by tick 2 and is still live).
    let schedule = vec![
        (EngineRequest::new(1, family_prompt(10, 24), 4), 0), // A head
        (EngineRequest::new(2, family_prompt(20, 24), 4), 0), // B head
        (EngineRequest::new(3, family_prompt(10, 32), 4), 2), // A follower
        (EngineRequest::new(4, family_prompt(20, 32), 4), 2), // B follower
        (EngineRequest::new(5, family_prompt(10, 40), 4), 5), // A follower
        (EngineRequest::new(6, family_prompt(20, 40), 4), 5), // B follower
    ];
    let mut mk = |_role: EngineRole, _r: usize| pool(&model, &q, 320, 448);
    let report = run_cluster(&model, &cfg, &mut mk, schedule, &[]);

    let placements: Vec<(u64, usize, bool)> = report
        .requests
        .iter()
        .map(|r| (r.id, r.replica, r.matched_at_placement > 0))
        .collect();
    assert_eq!(
        placements,
        vec![
            (1, 0, false), // A head: no match anywhere, least-loaded → 0
            (2, 1, false), // B head: replica 0 now loaded, least-loaded → 1
            (3, 0, true),  // A follower: trie match on 0
            (4, 1, true),  // B follower: trie match on 1
            (5, 0, true),  // A follower: trie match on 0 (via follower 3)
            (6, 1, true),  // B follower: trie match on 1 (via follower 4)
        ]
    );
    assert_eq!(report.router.placed, 6);
    assert_eq!(report.router.fallbacks, 2);
    assert_eq!(report.router.affinity_hits, 4);
    // A 24-token head has sealed 2 shared blocks (16 tokens) when its
    // follower arrives; that 32-token follower has sealed the third
    // (24 tokens) when the last one arrives.
    assert_eq!(report.router.matched_tokens, 16 + 16 + 24 + 24);
    assert_eq!(report.tokens_reused(), 16 + 16 + 24 + 24);
}

/// The paper's disaggregation headline: a long prompt arriving mid-decode
/// inflates a monolithic engine's inter-token gaps (chunked prefill and
/// decode share iterations), while the cluster's decode replica keeps a
/// flat cadence.
#[test]
fn disaggregation_keeps_decode_itl_flat_under_prefill_interference() {
    let model = tiny_model();
    let q = profiled_oaken(&model);
    let mut cfg = cluster_cfg(engine_config(1, PreemptPolicy::SwapToHost));
    cfg.replicas = 1;
    cfg.work_tokens_per_tick = 4; // iterations feeding many tokens cost many ticks
    let schedule = vec![
        // A short request that should stream at a steady cadence...
        (EngineRequest::new(1, family_prompt(1, 8), 16), 0),
        // ...and a long prompt crashing in mid-decode.
        (EngineRequest::new(2, family_prompt(2, 48), 2), 6),
    ];
    let mut mk = |_role: EngineRole, _r: usize| pool(&model, &q, 320, 448);
    let cluster = run_cluster(&model, &cfg, &mut mk, schedule.clone(), &[]);
    let mono = run_monolithic(&model, &cfg, &mut mk, schedule, &[]);

    assert_eq!(cluster.request(1).tokens, mono.request(1).tokens);
    assert_eq!(cluster.request(2).tokens, mono.request(2).tokens);
    // Steady-state gaps (past the handoff) for the short request.
    let steady = |r: &ClusterReport| r.request(1).itl_gaps().split_off(2);
    let cluster_worst = steady(&cluster).into_iter().max().unwrap();
    let mono_worst = steady(&mono).into_iter().max().unwrap();
    assert!(
        cluster_worst < mono_worst,
        "decode replica worst ITL {cluster_worst} not below monolithic {mono_worst}"
    );
}

/// A slower link delays the handoff gap and accrues wire delay, but the
/// token bits never move.
#[test]
fn slow_link_delays_handoff_but_never_changes_tokens() {
    let model = tiny_model();
    let q = profiled_oaken(&model);
    let schedule = vec![(EngineRequest::new(1, family_prompt(1, 24), 4), 0)];
    let run_at = |bytes_per_tick: u64| {
        let mut cfg = cluster_cfg(engine_config(1, PreemptPolicy::SwapToHost));
        cfg.replicas = 1;
        cfg.transfer_bytes_per_tick = bytes_per_tick;
        let mut mk = |_role: EngineRole, _r: usize| pool(&model, &q, 320, 448);
        run_cluster(&model, &cfg, &mut mk, schedule.clone(), &[])
    };
    let fast = run_at(0);
    let slow = run_at(16);
    assert_eq!(fast.request(1).tokens, slow.request(1).tokens);
    assert_eq!(fast.transfer.wire_bytes, slow.transfer.wire_bytes);
    assert!(slow.transfer.delay_ticks > fast.transfer.delay_ticks);
    // The handoff gap (first inter-token gap) carries the wire delay.
    assert!(slow.request(1).itl_gaps()[0] > fast.request(1).itl_gaps()[0]);
    assert_eq!(slow.transfer.retries, 0);
}

/// A decode host tier sized for exactly one frozen transfer bounces
/// colliding deliveries. The chunked prefill budget (8 tokens to the
/// head of the admission queue, minimum 1 to each follower) makes a
/// 24-token head and two 3-token followers finish prefill in the same
/// iteration, so all three exports ride the link together and land on
/// the same tick: the first fills the host tier, the other two bounce
/// and retry the next tick. Nothing is lost, everything finishes.
#[test]
fn full_decode_host_tier_bounces_and_retries_transfers() {
    let model = tiny_model();
    let q = profiled_oaken(&model);
    let mut cfg = cluster_cfg(engine_config(1, PreemptPolicy::SwapToHost));
    cfg.replicas = 1;
    cfg.work_tokens_per_tick = 64; // one tick per engine iteration
    let schedule = vec![
        (EngineRequest::new(1, family_prompt(1, 24), 8), 0),
        (EngineRequest::new(2, family_prompt(2, 3), 8), 0),
        (EngineRequest::new(3, family_prompt(3, 3), 8), 0),
    ];
    // Measure the widest transfer's host-page footprint (per rank shard,
    // since the host tier splits evenly across ranks) by running the
    // 24-token request's prefill leg through a probe engine.
    let per_transfer: u32 = {
        let mut probe = oaken_serving::BatchEngine::new(
            &model,
            pool(&model, &q, 320, 448),
            TokenScheduler::new(cfg.scheduler_cores),
            cfg.engine,
        );
        let mut leg = schedule[0].0.clone();
        leg.max_new_tokens = 1;
        probe.mark_for_export(leg.id);
        probe.submit(leg);
        while probe.step() {}
        let export = probe
            .take_exports()
            .pop()
            .expect("probe produced an export");
        let widest = export
            .transfers
            .iter()
            .map(|t| t.payload().pages_needed(512))
            .max()
            .expect("at least one rank shard");
        widest * export.transfers.len() as u32
    };
    let mut mk = |role: EngineRole, _r: usize| {
        if role == EngineRole::Decode {
            pool(&model, &q, 320, per_transfer)
        } else {
            pool(&model, &q, 320, 448)
        }
    };
    let report = run_cluster(&model, &cfg, &mut mk, schedule, &[]);
    assert!(
        report.transfer.retries > 0,
        "expected at least one bounced delivery"
    );
    assert_eq!(report.transfer.transfers, 3);
    for id in [1, 2, 3] {
        assert_eq!(report.request(id).outcome, RequestOutcome::Finished);
        assert_eq!(report.request(id).tokens.len(), 8);
    }
}

/// Cancels catch requests wherever they live: still schedule-parked
/// (never runs, no record), mid-wire on the link (frozen KV dropped), or
/// decoding on the decode engine (partial stream kept).
#[test]
fn cancels_catch_requests_parked_on_the_wire_and_decoding() {
    let model = tiny_model();
    let q = profiled_oaken(&model);
    let mut mk = |_role: EngineRole, _r: usize| pool(&model, &q, 320, 448);

    // Fast link: request 1 reaches its decode engine quickly and is
    // cancelled mid-decode; request 2 is cancelled while still
    // schedule-parked and never runs.
    let mut cfg = cluster_cfg(engine_config(1, PreemptPolicy::SwapToHost));
    cfg.replicas = 1;
    let schedule = vec![
        (EngineRequest::new(1, family_prompt(1, 16), 12), 0),
        (EngineRequest::new(2, family_prompt(2, 16), 4), 500),
    ];
    let report = run_cluster(&model, &cfg, &mut mk, schedule, &[(8, 1), (90, 2)]);
    assert_eq!(report.requests.len(), 1, "parked cancel leaves no record");
    assert_eq!(report.request(1).outcome, RequestOutcome::Cancelled);
    let kept = report.request(1).tokens.len();
    assert!(
        kept > 1 && kept < 12,
        "expected a partial decode stream, kept {kept}"
    );
    assert!(report.request(1).disaggregated);
    assert_eq!(report.decode_stats[0].cancellations, 1);

    // Slow link (2 wire bytes per tick): the export spends hundreds of
    // ticks in flight, so the cancel catches it on the wire — the frozen
    // KV is dropped, only the prefill-leg token survives.
    let mut cfg = cluster_cfg(engine_config(1, PreemptPolicy::SwapToHost));
    cfg.replicas = 1;
    cfg.transfer_bytes_per_tick = 2;
    let schedule = vec![(EngineRequest::new(1, family_prompt(1, 16), 12), 0)];
    let report = run_cluster(&model, &cfg, &mut mk, schedule, &[(40, 1)]);
    assert_eq!(report.request(1).outcome, RequestOutcome::Cancelled);
    assert_eq!(report.request(1).tokens.len(), 1);
    assert_eq!(report.transfer.transfers, 1);
    assert_eq!(report.decode_stats[0].imports, 0);
}

//! The modeled prefill→decode KV transfer link.
//!
//! A disaggregated handoff ships the frozen, quantized KV of a finished
//! prefill to its decode replica. The link models that interconnect with
//! a single knob — bytes per service-clock tick — and charges each
//! export its *wire* size (payload bytes plus the self-describing stream
//! headers, [`KvExport::wire_bytes`]): a transfer sent at tick `t`
//! becomes deliverable at `t + ceil(wire_bytes / bytes_per_tick)`
//! (minimum one tick; a zero knob means an infinitely fast link, i.e.
//! deliverable the tick after it was sent). Deliveries the destination
//! cannot yet host (its host tier is full) are requeued for the next
//! tick rather than dropped — backpressure shows up as delay, never as
//! lost KV.

use oaken_serving::KvExport;

/// Link accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Exports that entered the link.
    pub transfers: u64,
    /// Wire bytes shipped (payload + stream headers), summed.
    pub wire_bytes: u64,
    /// Ticks spent on the wire, summed over delivered transfers (each
    /// transfer contributes `delivered_at − sent_at`).
    pub delay_ticks: u64,
    /// Deliveries bounced by a full destination and requeued.
    pub retries: u64,
}

/// One export on the wire.
#[derive(Debug)]
struct InFlight {
    export: KvExport,
    replica: usize,
    sent_at: u64,
    deliver_at: u64,
    /// Arrival order on the link — the delivery-order tiebreak for
    /// transfers due on the same tick.
    seq: u64,
}

/// The cluster's shared transfer fabric: every prefill→decode handoff,
/// for every replica, rides this one link model.
#[derive(Debug)]
pub struct TransferLink {
    bytes_per_tick: u64,
    in_flight: Vec<InFlight>,
    next_seq: u64,
    stats: TransferStats,
}

impl TransferLink {
    /// A link shipping `bytes_per_tick` wire bytes per service-clock
    /// tick; `0` models an infinitely fast interconnect (every transfer
    /// still takes the one-tick minimum).
    pub fn new(bytes_per_tick: u64) -> Self {
        Self {
            bytes_per_tick,
            in_flight: Vec::new(),
            next_seq: 0,
            stats: TransferStats::default(),
        }
    }

    /// The configured bandwidth knob.
    pub fn bytes_per_tick(&self) -> u64 {
        self.bytes_per_tick
    }

    /// Link accounting so far.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Whether nothing is on the wire.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Transfers currently bound for `replica` — router load input.
    pub fn in_flight_to(&self, replica: usize) -> u64 {
        self.in_flight
            .iter()
            .filter(|f| f.replica == replica)
            .count() as u64
    }

    /// Puts an export on the wire toward `replica` at tick `now`.
    pub fn send(&mut self, export: KvExport, replica: usize, now: u64) {
        let wire = export.wire_bytes();
        let ticks = if self.bytes_per_tick == 0 {
            1
        } else {
            wire.div_ceil(self.bytes_per_tick).max(1)
        };
        self.stats.transfers += 1;
        self.stats.wire_bytes += wire;
        self.in_flight.push(InFlight {
            export,
            replica,
            sent_at: now,
            deliver_at: now + ticks,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    /// Puts a bounced delivery back on the wire for the next tick (the
    /// destination's host tier was full); the original send time is kept
    /// so the retry keeps accruing delay.
    pub fn requeue(&mut self, export: KvExport, replica: usize, sent_at: u64, now: u64) {
        self.stats.retries += 1;
        self.in_flight.push(InFlight {
            export,
            replica,
            sent_at,
            deliver_at: now + 1,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    /// Removes and returns the in-flight export for request `id`, if one
    /// is on the wire — how a cancel catches a request mid-handoff. The
    /// frozen KV is simply dropped with the export; the destination never
    /// sees it.
    pub fn cancel(&mut self, id: u64) -> Option<KvExport> {
        let i = self
            .in_flight
            .iter()
            .position(|f| f.export.request.id == id)?;
        Some(self.in_flight.remove(i).export)
    }

    /// Removes and returns every transfer with `deliver_at <= now`, in
    /// `(deliver_at, link arrival order)` order: `(replica, export,
    /// sent_at)` triples. The caller ingests each and
    /// [`requeue`](Self::requeue)s rejections.
    pub fn deliver_due(&mut self, now: u64) -> Vec<(usize, KvExport, u64)> {
        self.in_flight.sort_by_key(|f| (f.deliver_at, f.seq));
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].deliver_at <= now {
                let f = self.in_flight.remove(i);
                self.stats.delay_ticks += now - f.sent_at;
                due.push((f.replica, f.export, f.sent_at));
            } else {
                i += 1;
            }
        }
        due
    }
}

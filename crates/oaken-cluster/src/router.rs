//! Multi-replica request placement.
//!
//! The router sees every arrival before any engine does and decides which
//! replica serves it. Its leverage is the prefix trie: quantization is
//! prefix-deterministic, so a replica that already holds a prompt's
//! prefix can skip both the forward pass and the quantization for the
//! shared tokens — but only if the request actually lands there. The
//! affinity policy probes every replica's prefill trie for the longest
//! shared prefix and scores replicas by tokens reused minus a load
//! penalty; when nothing matches anywhere it degrades to least-loaded
//! placement. Placement is a pure function of the probe results and the
//! router's own counters, so cluster runs replay deterministically.

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterPolicy {
    /// Prefix-affinity scoring (the default): every replica's prefill
    /// trie is probed for the arriving prompt, and the replica with the
    /// best `tokens_matched × 1000 − outstanding_load` score wins (ties
    /// to the lowest index). The weight makes any positive match dominate
    /// realistic load gaps — affinity splits a prefix family across
    /// replicas only under a thousand-request load imbalance — which is
    /// what makes "affinity never reuses fewer tokens than round-robin"
    /// a provable property, not a heuristic tendency. Requests matching
    /// nowhere fall back to least-loaded.
    #[default]
    Affinity,
    /// Strict rotation, ignoring both tries and load — the baseline the
    /// affinity headlines are measured against.
    RoundRobin,
    /// Lowest outstanding load (ties to the lowest index), ignoring
    /// tries — the classic load balancer.
    LeastLoaded,
}

impl RouterPolicy {
    /// The process-wide default: `OAKEN_ROUTER=rr` selects
    /// [`RouterPolicy::RoundRobin`], `OAKEN_ROUTER=load` selects
    /// [`RouterPolicy::LeastLoaded`], anything else (or unset) selects
    /// [`RouterPolicy::Affinity`].
    pub fn default_policy() -> Self {
        match std::env::var("OAKEN_ROUTER") {
            Ok(v) if v.eq_ignore_ascii_case("rr") => RouterPolicy::RoundRobin,
            Ok(v) if v.eq_ignore_ascii_case("load") => RouterPolicy::LeastLoaded,
            _ => RouterPolicy::Affinity,
        }
    }
}

/// What the router knows about one replica at placement time.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaProbe {
    /// Prompt tokens the replica's prefill trie already holds (longest
    /// shared prefix, in tokens).
    pub matched_tokens: usize,
    /// Outstanding work on the replica: requests active, queued, or
    /// suspended on either engine, plus transfers still in flight to it.
    pub load: u64,
}

/// Placement counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests placed.
    pub placed: u64,
    /// Placements that followed a positive trie match.
    pub affinity_hits: u64,
    /// Prompt tokens matched at placement time, summed over placements
    /// (an upper bound on alloc-time reuse: the trie can evolve between
    /// placement and admission).
    pub matched_tokens: u64,
    /// Affinity placements that matched nowhere and fell back to
    /// least-loaded.
    pub fallbacks: u64,
}

/// The placement engine: policy + counters + the round-robin cursor.
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    stats: RouterStats,
    next_rr: usize,
}

impl Router {
    /// A router with the given policy.
    pub fn new(policy: RouterPolicy) -> Self {
        Self {
            policy,
            stats: RouterStats::default(),
            next_rr: 0,
        }
    }

    /// The installed policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Placement counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Chooses the replica for one arrival given each replica's probe.
    ///
    /// # Panics
    ///
    /// Panics on an empty probe slice.
    pub fn place(&mut self, probes: &[ReplicaProbe]) -> usize {
        assert!(!probes.is_empty(), "a cluster has at least one replica");
        self.stats.placed += 1;
        match self.policy {
            RouterPolicy::RoundRobin => {
                let r = self.next_rr % probes.len();
                self.next_rr = (self.next_rr + 1) % probes.len();
                r
            }
            RouterPolicy::LeastLoaded => least_loaded(probes),
            RouterPolicy::Affinity => {
                if probes.iter().all(|p| p.matched_tokens == 0) {
                    self.stats.fallbacks += 1;
                    return least_loaded(probes);
                }
                // score = tokens reused − load penalty, with the match
                // weighted so it dominates realistic load imbalances.
                let r = probes
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, p)| {
                        (
                            p.matched_tokens as i64 * 1000 - p.load as i64,
                            std::cmp::Reverse(i),
                        )
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty");
                self.stats.affinity_hits += 1;
                self.stats.matched_tokens += probes[r].matched_tokens as u64;
                r
            }
        }
    }
}

/// Lowest load, ties to the lowest index.
fn least_loaded(probes: &[ReplicaProbe]) -> usize {
    probes
        .iter()
        .enumerate()
        .min_by_key(|&(i, p)| (p.load, i))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(matched: usize, load: u64) -> ReplicaProbe {
        ReplicaProbe {
            matched_tokens: matched,
            load,
        }
    }

    #[test]
    fn affinity_prefers_longest_match_then_load_then_index() {
        let mut r = Router::new(RouterPolicy::Affinity);
        assert_eq!(r.place(&[probe(4, 9), probe(8, 9), probe(0, 0)]), 1);
        // Equal matches: lighter replica wins.
        assert_eq!(r.place(&[probe(8, 5), probe(8, 3)]), 1);
        // Full tie: lowest index wins.
        assert_eq!(r.place(&[probe(8, 3), probe(8, 3)]), 0);
        // A positive match beats a big load gap...
        assert_eq!(r.place(&[probe(1, 900), probe(0, 0)]), 0);
        // ...until the gap reaches the 1000×match weight.
        assert_eq!(r.place(&[probe(1, 1001), probe(0, 0)]), 1);
        let s = r.stats();
        assert_eq!(s.placed, 5);
        assert_eq!(s.affinity_hits, 5);
        assert_eq!(s.fallbacks, 0);
        assert_eq!(s.matched_tokens, 8 + 8 + 8 + 1);
    }

    #[test]
    fn affinity_falls_back_to_least_loaded_on_no_match() {
        let mut r = Router::new(RouterPolicy::Affinity);
        assert_eq!(r.place(&[probe(0, 7), probe(0, 2), probe(0, 2)]), 1);
        assert_eq!(r.stats().fallbacks, 1);
        assert_eq!(r.stats().affinity_hits, 0);
    }

    #[test]
    fn round_robin_rotates_regardless_of_state() {
        let mut r = Router::new(RouterPolicy::RoundRobin);
        let probes = [probe(100, 0), probe(0, 100), probe(0, 0)];
        let picks: Vec<usize> = (0..6).map(|_| r.place(&probes)).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }
}

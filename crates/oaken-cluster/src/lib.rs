//! Deterministic disaggregated-serving cluster.
//!
//! Production LLM serving splits work across machines two ways at once:
//! **disaggregation** (prefill and decode run on separate engines, with
//! the finished prompt's quantized KV shipped between them) and
//! **replication** (several such pairs behind a router). This crate
//! models both on the same deterministic service clock the rest of the
//! workspace uses, so every cluster experiment — any replica count, any
//! routing policy, any transfer bandwidth — is bit-exact reproducible
//! and directly comparable to a monolithic engine run of the same
//! schedule.
//!
//! The pieces:
//!
//! - [`Router`] places each arrival on a replica. The default
//!   [`RouterPolicy::Affinity`] probes every replica's prefix trie for
//!   the longest shared prompt prefix and weighs tokens reused against
//!   load, so prefix families pile onto the replica that already holds
//!   their KV — quantized-domain prefix reuse only pays off if requests
//!   actually land where the prefix lives.
//! - [`TransferLink`] models the prefill→decode interconnect: each
//!   handoff is charged its self-describing wire size (the flattened
//!   per-token quantized stream tables plus payload) at a configurable
//!   bytes-per-tick, and full destinations bounce deliveries into the
//!   next tick instead of dropping them.
//! - [`run_cluster`] drives the whole thing — and [`run_monolithic`]
//!   drives one engine with the *same* loop and the same work-aware
//!   iteration cost model, making it the fair baseline: identical token
//!   streams (the engines are deterministic; a handoff resumes exactly
//!   where a monolithic engine would be), different timing.
//!
//! What the paper's storyline buys here: prefill work no longer shares
//! an engine with decode, so a long prompt's chunked ingestion stops
//! inflating other requests' inter-token latency — the decode replica's
//! p99 ITL stays flat as prompts grow — and affinity routing keeps
//! prefix reuse (and therefore TTFT) intact across replicas, where
//! round-robin placement shreds it.

mod cluster;
mod router;
mod transfer;

pub use cluster::{
    run_cluster, run_monolithic, ClusterConfig, ClusterReport, EngineRole, RequestRecord,
};
pub use router::{ReplicaProbe, Router, RouterPolicy, RouterStats};
pub use transfer::{TransferLink, TransferStats};

/// The process-wide default replica count: the `OAKEN_REPLICAS`
/// environment knob when set to a positive integer, else 1. The CI
/// matrix uses it to run the whole suite as a 2-replica cluster without
/// touching any call site.
pub fn default_replicas() -> usize {
    std::env::var("OAKEN_REPLICAS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

//! The deterministic disaggregated cluster: prefill/decode engine pairs
//! behind a prefix-affinity router, with frozen-KV handoff over a
//! modeled transfer link — and the monolithic comparator that shares
//! every line of the driving loop.
//!
//! # One global clock, work-aware
//!
//! The whole cluster runs on a single service clock. An engine iteration
//! is not free: stepping an engine that fed `n` tokens (prompt chunks
//! plus decodes) occupies it for `max(1, ceil(n / work_tokens_per_tick))`
//! ticks, during which it is not stepped again. This is what makes
//! disaggregation *measurable*: on a monolithic engine a long prompt's
//! chunked prefill inflates every co-scheduled decode's inter-token gap
//! (the iteration fed prompt + decode tokens, so it costs more ticks),
//! while a decode replica's iterations stay small and its ITL flat.
//! [`run_monolithic`] applies the *identical* cost model to a single
//! engine, so cluster-vs-monolithic comparisons are apples to apples.
//!
//! # The tick
//!
//! Each tick, in fixed order: (1) due arrivals are routed and submitted
//! (the one shared [`ArrivalQueue`] yields them in the service
//! protocol's `(arrival, submission)` order); (2) due cancels resolve —
//! schedule-parked requests never run, in-flight ones cancel on
//! whichever engine or link leg holds them; (3) due transfers land on
//! their decode engines (a full host tier bounces the delivery to the
//! next tick); (4) every engine whose busy-horizon has passed steps
//! once, its tokens are stitched into per-request records stamped with
//! the current clock, and fresh prefill exports enter the link. Every
//! one of those steps is a pure function of the schedule and the config,
//! so any `(replicas, policy, transfer cost)` run is bit-exact
//! reproducible — and generates *token streams* identical to the
//! monolithic run, because the engines themselves are deterministic and
//! a handoff resumes at exactly the position a monolithic engine would
//! have been in.
//!
//! # The single-token rule
//!
//! A request with `max_new_tokens == 1` is never disaggregated: its one
//! token is the prefill leg's sample, and a resumed sequence always
//! decodes at least one further token before retiring. The router still
//! places it; it just runs to completion on the replica's prefill
//! engine.

use crate::router::{ReplicaProbe, Router, RouterPolicy, RouterStats};
use crate::transfer::{TransferLink, TransferStats};
use oaken_model::{Model, PagedKvPool, PoolError};
use oaken_service::ArrivalQueue;
use oaken_serving::{
    BatchEngine, EngineConfig, EngineRequest, EngineStats, RequestOutcome, TokenScheduler,
};
use std::collections::HashMap;

/// Which engine a pool is being built for — the pool factory's handle
/// for splitting a fixed page budget across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineRole {
    /// A replica's prefill engine (ingests prompts, exports frozen KV).
    Prefill,
    /// A replica's decode engine (imports frozen KV, streams tokens).
    Decode,
    /// The single engine of a [`run_monolithic`] comparator run.
    Monolithic,
}

/// Cluster knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Prefill/decode replica pairs. Defaults to
    /// [`default_replicas`](crate::default_replicas) (the
    /// `OAKEN_REPLICAS` environment knob).
    pub replicas: usize,
    /// Placement policy. Defaults to [`RouterPolicy::default_policy`]
    /// (the `OAKEN_ROUTER` environment knob).
    pub router: RouterPolicy,
    /// Transfer-link bandwidth in wire bytes per tick; `0` is an
    /// infinitely fast link (one-tick minimum still applies).
    pub transfer_bytes_per_tick: u64,
    /// Tokens one engine iteration advances per service-clock tick — the
    /// work-aware cost model's knob. An iteration feeding `n` tokens
    /// occupies its engine for `max(1, ceil(n / this))` ticks.
    pub work_tokens_per_tick: u64,
    /// Cores per engine's token scheduler.
    pub scheduler_cores: usize,
    /// Per-engine configuration, applied to every engine in the cluster.
    pub engine: EngineConfig,
}

impl ClusterConfig {
    /// Cluster defaults (environment knobs for replicas and routing, an
    /// instantaneous link, 32 tokens of work per tick) around the given
    /// engine config.
    pub fn new(engine: EngineConfig) -> Self {
        Self {
            replicas: crate::default_replicas(),
            router: RouterPolicy::default_policy(),
            transfer_bytes_per_tick: 0,
            work_tokens_per_tick: 32,
            scheduler_cores: 4,
            engine,
        }
    }
}

/// One request's journey through the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Request id.
    pub id: u64,
    /// Scheduled arrival tick.
    pub arrival: u64,
    /// Replica the router placed it on (always 0 for a monolithic run).
    pub replica: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Whether it took the disaggregated path (prefill → link → decode).
    pub disaggregated: bool,
    /// Prompt tokens the placed replica's trie already held at
    /// placement.
    pub matched_at_placement: usize,
    /// Decode tokens in index order (restart re-emissions deduped).
    pub tokens: Vec<u32>,
    /// Service-clock tick of each token's first emission.
    pub token_clocks: Vec<u64>,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// Tick the terminal state was observed.
    pub finish_clock: u64,
}

impl RequestRecord {
    /// Ticks from arrival to first token, when one was produced.
    pub fn ttft(&self) -> Option<u64> {
        self.token_clocks.first().map(|&c| c - self.arrival)
    }

    /// Consecutive inter-token gaps in ticks. The first gap of a
    /// disaggregated request spans the KV handoff (export, wire,
    /// ingest); the rest are pure decode cadence.
    pub fn itl_gaps(&self) -> Vec<u64> {
        self.token_clocks.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Everything one cluster (or monolithic) run produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-request records, in schedule order (requests cancelled while
    /// still schedule-parked never ran and are omitted, mirroring the
    /// service replay).
    pub requests: Vec<RequestRecord>,
    /// Placement counters.
    pub router: RouterStats,
    /// Link counters (all zero for a monolithic run).
    pub transfer: TransferStats,
    /// Final per-engine counters, prefill engines in replica order (the
    /// single engine of a monolithic run lands here).
    pub prefill_stats: Vec<EngineStats>,
    /// Final per-engine counters, decode engines in replica order
    /// (empty for a monolithic run).
    pub decode_stats: Vec<EngineStats>,
    /// Final service-clock value.
    pub clock: u64,
}

impl ClusterReport {
    /// The record for `id`.
    pub fn request(&self, id: u64) -> &RequestRecord {
        self.requests
            .iter()
            .find(|r| r.id == id)
            .expect("every injected request has a record")
    }

    /// Prompt tokens adopted from prefix tries instead of being re-run,
    /// summed over every engine — the affinity router's win metric.
    pub fn tokens_reused(&self) -> u64 {
        self.prefill_stats
            .iter()
            .chain(&self.decode_stats)
            .map(|s| s.prefix.tokens_reused)
            .sum()
    }

    /// TTFT samples in ticks over requests that produced a token.
    pub fn ttft_samples(&self) -> Vec<u64> {
        self.requests.iter().filter_map(|r| r.ttft()).collect()
    }

    /// Inter-token gap samples in ticks, pooled over all requests. Pass
    /// `skip_handoff_gap` to drop each request's first gap — the one a
    /// disaggregated handoff inflates — leaving pure decode cadence.
    pub fn itl_samples(&self, skip_handoff_gap: bool) -> Vec<u64> {
        let skip = usize::from(skip_handoff_gap);
        self.requests
            .iter()
            .flat_map(|r| r.itl_gaps().into_iter().skip(skip))
            .collect()
    }
}

/// One engine plus its share of the global clock's bookkeeping.
struct Slot<'m> {
    engine: BatchEngine<'m>,
    /// The tick this engine is next allowed to step (work-aware cost).
    busy_until: u64,
    /// `prefill_tokens + decode_tokens` already accounted, for per-step
    /// fed deltas.
    tokens_seen: u64,
    /// Prefix of `engine.finished()` already harvested.
    finished_seen: usize,
}

impl Slot<'_> {
    fn idle(&self) -> bool {
        self.engine.active_len() == 0
            && self.engine.queue_len() == 0
            && self.engine.resume_len() == 0
    }

    fn outstanding(&self) -> u64 {
        (self.engine.active_len() + self.engine.queue_len() + self.engine.resume_len()) as u64
    }
}

/// Runs a disaggregated cluster over an open-loop `(request, arrival)`
/// schedule plus optional scripted `(tick, id)` cancels. `make_pool`
/// builds each engine's pool — called once per engine with its role and
/// replica index, so a fixed total page budget can be split however the
/// experiment demands.
pub fn run_cluster(
    model: &Model,
    config: &ClusterConfig,
    make_pool: &mut dyn FnMut(EngineRole, usize) -> PagedKvPool,
    schedule: Vec<(EngineRequest, u64)>,
    cancels: &[(u64, u64)],
) -> ClusterReport {
    assert!(config.replicas > 0, "a cluster needs at least one replica");
    run(model, config, make_pool, schedule, cancels, true)
}

/// Runs the monolithic comparator: one engine, no disaggregation, no
/// link — but the *same* driving loop, arrival ordering, and work-aware
/// cost model as [`run_cluster`]. By the engine determinism contract the
/// two produce identical per-request token streams; what moves is
/// timing, which is the whole point of the comparison.
pub fn run_monolithic(
    model: &Model,
    config: &ClusterConfig,
    make_pool: &mut dyn FnMut(EngineRole, usize) -> PagedKvPool,
    schedule: Vec<(EngineRequest, u64)>,
    cancels: &[(u64, u64)],
) -> ClusterReport {
    run(model, config, make_pool, schedule, cancels, false)
}

fn run(
    model: &Model,
    config: &ClusterConfig,
    make_pool: &mut dyn FnMut(EngineRole, usize) -> PagedKvPool,
    schedule: Vec<(EngineRequest, u64)>,
    cancels: &[(u64, u64)],
    disaggregate: bool,
) -> ClusterReport {
    let replicas = if disaggregate { config.replicas } else { 1 };
    let scheduler = TokenScheduler::new(config.scheduler_cores);

    // Slot layout: replica r's prefill engine at 2r, decode at 2r + 1;
    // the monolithic engine is a lone "prefill" slot.
    let mut slots: Vec<Slot<'_>> = Vec::new();
    for r in 0..replicas {
        let role = if disaggregate {
            EngineRole::Prefill
        } else {
            EngineRole::Monolithic
        };
        slots.push(new_slot(model, make_pool(role, r), scheduler, config));
        if disaggregate {
            slots.push(new_slot(
                model,
                make_pool(EngineRole::Decode, r),
                scheduler,
                config,
            ));
        }
    }
    let stride = if disaggregate { 2 } else { 1 };

    let mut router = Router::new(if disaggregate {
        config.router
    } else {
        RouterPolicy::RoundRobin // degenerate on one replica; keeps stats clean
    });
    let mut link = TransferLink::new(config.transfer_bytes_per_tick);
    let mut queue: ArrivalQueue<EngineRequest> = ArrivalQueue::new();
    let order: Vec<u64> = schedule.iter().map(|(req, _)| req.id).collect();
    let mut arrivals: HashMap<u64, u64> = HashMap::new();
    for (req, arrival) in schedule {
        arrivals.insert(req.id, arrival);
        queue.schedule(arrival, req);
    }
    for &(at, id) in cancels {
        queue.schedule_cancel(at, id);
    }

    let mut records: HashMap<u64, RequestRecord> = HashMap::new();
    let mut orig_max: HashMap<u64, usize> = HashMap::new();
    let mut replica_of: HashMap<u64, usize> = HashMap::new();
    let mut clock: u64 = 0;

    loop {
        if slots.iter().all(Slot::idle) && !queue.has_pending() && link.is_empty() {
            break;
        }

        // 1. Route and submit due arrivals.
        for req in queue.take_due(clock) {
            let probes: Vec<ReplicaProbe> = (0..replicas)
                .map(|r| ReplicaProbe {
                    matched_tokens: slots[r * stride].engine.pool().probe_prefix(&req.prompt),
                    load: slots[r * stride].outstanding()
                        + if disaggregate {
                            slots[r * stride + 1].outstanding() + link.in_flight_to(r)
                        } else {
                            0
                        },
                })
                .collect();
            let r = router.place(&probes);
            replica_of.insert(req.id, r);
            // The single-token rule: a 1-token request's output *is* the
            // prefill sample — it cannot be resumed without overshooting,
            // so it runs to completion on the prefill engine.
            let split = disaggregate && req.max_new_tokens >= 2;
            records.insert(
                req.id,
                RequestRecord {
                    id: req.id,
                    arrival: arrivals[&req.id],
                    replica: r,
                    prompt_len: req.prompt.len(),
                    disaggregated: split,
                    matched_at_placement: probes[r].matched_tokens,
                    tokens: Vec::new(),
                    token_clocks: Vec::new(),
                    outcome: RequestOutcome::Finished, // overwritten at terminal
                    finish_clock: 0,
                },
            );
            let prefill = &mut slots[r * stride];
            if split {
                orig_max.insert(req.id, req.max_new_tokens);
                let mut leg = req;
                leg.max_new_tokens = 1;
                prefill.engine.mark_for_export(leg.id);
                prefill.engine.submit(leg);
            } else {
                prefill.engine.submit(req);
            }
        }

        // 2. Due cancels: parked requests never ran; in-flight ones
        // cancel wherever they currently live — prefill engine, decode
        // engine, or mid-wire on the link.
        for id in queue.due_cancels(clock) {
            if queue.remove_parked(id, |req| req.id).is_some() {
                records.remove(&id);
                continue;
            }
            let Some(&r) = replica_of.get(&id) else {
                continue; // unknown or already torn down
            };
            let base = r * stride;
            let cancelled = slots[base].engine.cancel(id)
                || (disaggregate && slots[base + 1].engine.cancel(id));
            if !cancelled {
                if let Some(export) = link.cancel(id) {
                    let rec = records
                        .get_mut(&id)
                        .expect("in-flight request has a record");
                    rec.outcome = RequestOutcome::Cancelled;
                    rec.finish_clock = clock;
                    drop(export); // the frozen KV dies on the wire
                }
            }
            // An engine-side cancel surfaces through finished() below.
        }

        // 3. Land due transfers on their decode engines.
        for (r, mut export, sent_at) in link.deliver_due(clock) {
            let id = export.request.id;
            export.request.max_new_tokens = orig_max[&id];
            let decode = &mut slots[r * stride + 1];
            match decode.engine.ingest_frozen(export) {
                Ok(()) => {
                    orig_max.remove(&id);
                }
                Err((export, PoolError::OutOfHostPages { .. })) => {
                    // Destination host tier full: if it is fully idle with
                    // nothing else bound for it, no future tick can help.
                    assert!(
                        !(decode.idle() && link.in_flight_to(r) == 0),
                        "transfer for request {id} can never fit replica {r}'s decode host tier"
                    );
                    link.requeue(export, r, sent_at, clock);
                }
                Err((_, e)) => panic!("transfer ingest failed: {e}"),
            }
        }

        // 4. Step every engine whose work horizon has passed, in fixed
        // slot order; stitch its emissions into the records.
        for (i, slot) in slots.iter_mut().enumerate() {
            if clock >= slot.busy_until && !slot.idle() {
                let progressed = slot.engine.step();
                let stats = slot.engine.stats();
                let fed = stats.prefill_tokens + stats.decode_tokens;
                let delta = fed - slot.tokens_seen;
                slot.tokens_seen = fed;
                if progressed {
                    let cost = if config.work_tokens_per_tick == 0 {
                        1
                    } else {
                        delta.div_ceil(config.work_tokens_per_tick).max(1)
                    };
                    slot.busy_until = clock + cost;
                }
            }
            // Drain emissions even on ticks the engine did not step: a
            // cancel can retire a request (and idle the engine) between
            // steps, and its terminal record must still be harvested.
            for ev in slot.engine.take_token_events() {
                if let Some(rec) = records.get_mut(&ev.id) {
                    if ev.index == rec.tokens.len() {
                        rec.tokens.push(ev.token);
                        rec.token_clocks.push(clock);
                    }
                }
            }
            // Fresh exports ride the link to this slot's decode twin.
            let replica = i / stride;
            for export in slot.engine.take_exports() {
                link.send(export, replica, clock);
            }
            let finished = slot.engine.finished();
            for f in &finished[slot.finished_seen..] {
                if let Some(rec) = records.get_mut(&f.id) {
                    rec.outcome = f.outcome;
                    rec.finish_clock = clock;
                    debug_assert_eq!(
                        rec.tokens, f.generated,
                        "stitched stream diverged from the terminal record"
                    );
                }
            }
            slot.finished_seen = finished.len();
        }

        clock += 1;
    }

    let mut prefill_stats = Vec::new();
    let mut decode_stats = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        if disaggregate && i % 2 == 1 {
            decode_stats.push(slot.engine.stats().clone());
        } else {
            prefill_stats.push(slot.engine.stats().clone());
        }
    }
    ClusterReport {
        requests: order.iter().filter_map(|id| records.remove(id)).collect(),
        router: router.stats(),
        transfer: link.stats(),
        prefill_stats,
        decode_stats,
        clock,
    }
}

fn new_slot<'m>(
    model: &'m Model,
    pool: PagedKvPool,
    scheduler: TokenScheduler,
    config: &ClusterConfig,
) -> Slot<'m> {
    Slot {
        engine: BatchEngine::new(model, pool, scheduler, config.engine),
        busy_until: 0,
        tokens_seen: 0,
        finished_seen: 0,
    }
}

//! The service determinism contract: with a seeded arrival schedule, the
//! token streams delivered through the concurrent service frontend are
//! **bit-identical** to (a) the same schedule fed directly to a bare
//! `BatchEngine` through the identical tick protocol, and (b) an
//! uninterrupted legacy `Session` decode of each request — at every
//! thread count and under both preemption policies. Delivery *clocks*
//! (the latency substrate) must match the direct replay tick for tick,
//! and so must the engine's aggregate stats.

mod common;

use common::*;
use oaken_service::{replay_open_loop_direct, serve, OpenLoopSpec};
use oaken_serving::{EngineRequest, PreemptPolicy, RequestOutcome, TokenScheduler};
use proptest::prelude::*;

/// Runs one schedule through the service and through the direct replay
/// under the given knobs, asserting the full contract.
fn assert_service_matches_direct(
    schedule: &[(EngineRequest, u64)],
    num_threads: usize,
    preempt: PreemptPolicy,
    pages: u32,
    host_pages: u32,
) {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let cfg = service_config(num_threads, preempt);

    let (results, report) = serve(
        &model,
        service_pool(&model, &quantizer, pages, host_pages),
        TokenScheduler::new(4),
        cfg,
        |client| {
            let handles = client.submit_schedule(schedule.iter().cloned());
            handles.into_iter().map(|h| h.wait()).collect::<Vec<_>>()
        },
    );
    let replay = replay_open_loop_direct(
        &model,
        service_pool(&model, &quantizer, pages, host_pages),
        TokenScheduler::new(4),
        cfg,
        schedule.to_vec(),
        &[],
    );

    let ctx = format!("threads={num_threads} preempt={preempt:?}");
    assert_eq!(results.len(), schedule.len(), "{ctx}: all handles terminal");
    for res in &results {
        let timing = replay.timing_for(res.id);
        let direct = replay.finished_for(res.id);
        assert_eq!(
            res.tokens, timing.tokens,
            "{ctx}: request {} service stream != direct stream",
            res.id
        );
        assert_eq!(
            res.token_clocks, timing.token_clocks,
            "{ctx}: request {} delivery clocks != direct clocks",
            res.id
        );
        assert_eq!(res.end.outcome, direct.outcome, "{ctx}: request {}", res.id);
        assert_eq!(
            res.end.generated, direct.generated,
            "{ctx}: request {} terminal tokens != direct terminal tokens",
            res.id
        );
        assert_eq!(res.end.ttft_iteration, direct.ttft_iteration, "{ctx}");
        assert_eq!(res.end.preemptions, direct.preemptions, "{ctx}");
        // The uninterrupted single-sequence reference: the service layer
        // must not perturb what the engine decodes.
        if res.end.outcome == RequestOutcome::Finished {
            let (req, _) = schedule
                .iter()
                .find(|(r, _)| r.id == res.id)
                .expect("result id came from the schedule");
            let reference = session_decode(&model, &quantizer, &req.prompt, req.max_new_tokens);
            assert_eq!(
                res.tokens, reference,
                "{ctx}: request {} != uninterrupted Session",
                res.id
            );
        }
    }
    assert_eq!(report.clock, replay.clock, "{ctx}: final service clocks");
    assert_eq!(report.stats, replay.stats, "{ctx}: engine stats");
    assert!(
        report.drained_empty(),
        "{ctx}: pool residue: {:?}",
        report.drain
    );
}

/// A fixed mixed workload on a seeded Poisson schedule, swept over the
/// full thread × preemption-policy matrix.
#[test]
fn poisson_schedule_bit_exact_across_threads_and_policies() {
    let spec = OpenLoopSpec::poisson(3.0, 42);
    let arrivals = oaken_service::arrival_schedule(&spec, 6);
    let schedule: Vec<_> = arrivals
        .into_iter()
        .enumerate()
        .map(|(i, at)| (request_for(i as u64, 5 + i % 4, 4 + i % 5), at))
        .collect();
    for &threads in &[1usize, 4] {
        for &preempt in &[PreemptPolicy::RestartRecompute, PreemptPolicy::SwapToHost] {
            assert_service_matches_direct(&schedule, threads, preempt, 256, 128);
        }
    }
}

/// Bursty arrivals under page pressure: bursts slam the admission gate
/// together, forcing queueing and preemption, and the streams must still
/// be bit-exact.
#[test]
fn bursty_schedule_bit_exact_under_page_pressure() {
    let spec = OpenLoopSpec::bursty(2.0, 3, 7);
    let arrivals = oaken_service::arrival_schedule(&spec, 6);
    let schedule: Vec<_> = arrivals
        .into_iter()
        .enumerate()
        .map(|(i, at)| (request_for(i as u64, 6, 10), at))
        .collect();
    for &preempt in &[PreemptPolicy::RestartRecompute, PreemptPolicy::SwapToHost] {
        assert_service_matches_direct(&schedule, 4, preempt, 80, 80);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random workloads (shapes and arrival gaps) through the matrix:
    /// the service must stay bit-exact with the direct replay and the
    /// Session reference for every draw.
    #[test]
    fn random_workloads_service_equals_direct(
        shapes in prop::collection::vec((2usize..10, 1usize..7, 0u64..5), 1..5),
        threads in prop::sample::select(vec![1usize, 4]),
        swap in any::<bool>(),
    ) {
        let mut at = 0u64;
        let schedule: Vec<_> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(plen, max_new, gap))| {
                at += gap;
                (request_for(i as u64, plen, max_new), at)
            })
            .collect();
        let preempt = if swap {
            PreemptPolicy::SwapToHost
        } else {
            PreemptPolicy::RestartRecompute
        };
        assert_service_matches_direct(&schedule, threads, preempt, 256, 128);
    }
}

//! Shared harness for the service test suites: the same tiny proxy
//! model, profiled Oaken quantizer, pool geometry, and uninterrupted
//! `Session` reference decode the engine suites use — so "service ==
//! direct == Session" assertions all speak the same bits.

#![allow(dead_code)]

use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{sample_greedy, Model, ModelConfig, PagedKvPool, QuantizedCache, Session};
use oaken_serving::{AdmissionPolicy, EngineConfig, EngineRequest, PreemptPolicy};
use std::sync::Arc;

pub fn tiny_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

/// Profiles an Oaken quantizer on the model's actual KV distribution via
/// the observer hook, matching the engine suites.
pub fn profiled_oaken(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 6, 8, 5))
}

/// The standard service-test pool: quantized, host swap tier enabled,
/// small trie blocks so prefix sharing actually triggers.
pub fn service_pool(
    model: &Model,
    quantizer: &Arc<dyn KvQuantizer>,
    pages: u32,
    host_pages: u32,
) -> PagedKvPool {
    let mut pool = PagedKvPool::for_model(model.config(), Some(quantizer.clone()), pages, 512);
    pool.set_host_pages(host_pages);
    pool.set_block_tokens(8);
    pool
}

/// Engine knobs shared by the service suites: chunked prefill with a
/// small budget and optimistic admission, so preemption and suspension
/// genuinely occur under the test workloads.
pub fn service_config(num_threads: usize, preempt: PreemptPolicy) -> EngineConfig {
    EngineConfig {
        max_batch: 4,
        admission: AdmissionPolicy::PromptOnly,
        preempt,
        prefill_token_budget: 8,
        num_threads,
        ..EngineConfig::default()
    }
}

/// A deterministic prompt unique to `id` (tokens stay inside the proxy
/// vocab).
pub fn prompt_for(id: u64, len: usize) -> Vec<u32> {
    (0..len as u32)
        .map(|i| (id as u32 * 37 + i * 11) % 256)
        .collect()
}

/// A request with a deterministic prompt.
pub fn request_for(id: u64, prompt_len: usize, max_new: usize) -> EngineRequest {
    EngineRequest::new(id, prompt_for(id, prompt_len), max_new)
}

/// Greedy reference decode through the legacy single-sequence `Session`
/// — the uninterrupted run every service stream must match token for
/// token. Mirrors the engine's env-driven kernel mode (`OAKEN_KERNEL`).
pub fn session_decode(
    model: &Model,
    quantizer: &Arc<dyn KvQuantizer>,
    prompt: &[u32],
    max_new: usize,
) -> Vec<u32> {
    let mut session: Session = model.session(Box::new(QuantizedCache::new(quantizer.clone())));
    session.set_kernel_mode(oaken_model::KernelMode::default_mode());
    let mut logits = session.prefill(prompt);
    let mut tokens = Vec::new();
    loop {
        let tok = sample_greedy(&logits);
        tokens.push(tok);
        if tokens.len() == max_new {
            return tokens;
        }
        logits = session.advance(tok);
    }
}

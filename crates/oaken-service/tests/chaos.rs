//! Chaos × service interaction: an armed deterministic fault plan, an
//! open-loop arrival schedule, and an iteration deadline all at once,
//! through the concurrent service frontend. The containment contract
//! from the engine's chaos suite must survive the service layer intact:
//! every injected fault is absorbed (failed requests, never a wedged
//! engine), every handle reaches a terminal state, survivors stream
//! bit-exact with both the direct replay *and* an uninterrupted
//! `Session` decode, and the pool drains exactly empty.

mod common;

use common::*;
use oaken_service::{arrival_schedule, replay_open_loop_direct, serve, OpenLoopSpec};
use oaken_serving::{
    AdmissionPolicy, EngineConfig, FaultPlan, PreemptPolicy, RequestOutcome, TokenScheduler,
};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn run_service_chaos(
    shapes: &[(usize, usize, u32)],
    plan: FaultPlan,
    num_threads: usize,
    preempt: PreemptPolicy,
    deadline: Option<u64>,
    arrival_seed: u64,
) -> u64 {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let cfg = EngineConfig {
        max_batch: 4,
        admission: AdmissionPolicy::PromptOnly,
        preempt,
        prefill_token_budget: 8,
        num_threads,
        fault_plan: Some(plan),
        max_iterations: deadline,
        ..EngineConfig::default()
    };
    let arrivals = arrival_schedule(&OpenLoopSpec::poisson(2.0, arrival_seed), shapes.len());
    let schedule: Vec<_> = shapes
        .iter()
        .zip(arrivals)
        .enumerate()
        .map(|(i, (&(plen, max_new, salt), at))| {
            let prompt: Vec<u32> = (0..plen as u32).map(|k| (salt + k * 13) % 256).collect();
            (
                oaken_serving::EngineRequest::new(i as u64, prompt, max_new),
                at,
            )
        })
        .collect();

    let (results, report) = serve(
        &model,
        service_pool(&model, &quantizer, 256, 128),
        TokenScheduler::new(4),
        cfg,
        |client| {
            let handles = client.submit_schedule(schedule.iter().cloned());
            handles.into_iter().map(|h| h.wait()).collect::<Vec<_>>()
        },
    );
    let replay = replay_open_loop_direct(
        &model,
        service_pool(&model, &quantizer, 256, 128),
        TokenScheduler::new(4),
        cfg,
        schedule.clone(),
        &[],
    );

    // Every handle terminal, bit-exact with the direct chaos replay.
    assert_eq!(results.len(), schedule.len());
    for res in &results {
        let direct = replay.finished_for(res.id);
        let timing = replay.timing_for(res.id);
        assert_eq!(res.end.outcome, direct.outcome, "request {}", res.id);
        assert_eq!(res.tokens, timing.tokens, "request {} stream", res.id);
        assert_eq!(
            res.token_clocks, timing.token_clocks,
            "request {} clocks",
            res.id
        );
        // Survivors must match the uninterrupted reference — the fault
        // schedule may not perturb what a surviving request decodes.
        if res.end.outcome == RequestOutcome::Finished {
            let (req, _) = schedule
                .iter()
                .find(|(r, _)| r.id == res.id)
                .expect("scheduled");
            let reference = session_decode(&model, &quantizer, &req.prompt, req.max_new_tokens);
            assert_eq!(res.tokens, reference, "survivor {} != Session", res.id);
        }
    }

    // Containment: injected faults are absorbed, terminal accounting
    // balances, and nothing leaks.
    let s = &report.stats;
    assert_eq!(
        s.faults_absorbed, s.faults_injected,
        "every injected fault must be absorbed"
    );
    assert_eq!(
        s.retired + s.failed + s.cancellations + s.deadline_kills,
        schedule.len() as u64,
        "terminal accounting must balance: {s:?}"
    );
    assert_eq!(*s, replay.stats, "service stats == direct replay stats");
    assert!(report.drained_empty(), "residue: {:?}", report.drain);
    s.faults_injected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random workloads × random fault plans × open-loop arrivals ×
    /// optional deadlines, through the service.
    #[test]
    fn chaos_open_loop_service_is_contained(
        shapes in prop::collection::vec((1usize..10, 1usize..6, 0u32..1000), 1..6),
        seed in any::<u64>(),
        rate in 5u16..150,
        four_threads in any::<bool>(),
        swap in any::<bool>(),
        with_deadline in any::<bool>(),
        deadline_iters in 5u64..60,
        arrival_seed in any::<u64>(),
    ) {
        run_service_chaos(
            &shapes,
            FaultPlan::new(seed).with_rate_permille(rate),
            if four_threads { 4 } else { 1 },
            if swap { PreemptPolicy::SwapToHost } else { PreemptPolicy::RestartRecompute },
            with_deadline.then_some(deadline_iters),
            arrival_seed,
        );
    }
}

/// CI wiring: under `OAKEN_FAULTS` the whole service-chaos contract runs
/// on the env-seeded schedule (the suite's fault pass also sets
/// `OAKEN_PREEMPT=swap` and `OAKEN_THREADS=4`); unset, a fixed hostile
/// seed keeps the path covered.
#[test]
fn env_seeded_fault_schedule_is_contained_through_service() {
    let plan = FaultPlan::from_env()
        .unwrap_or_else(|| FaultPlan::new(0xC0FFEE))
        .with_rate_permille(100);
    let shapes: Vec<(usize, usize, u32)> = (0..6u32)
        .map(|r| (4 + (r as usize % 5), 3 + (r as usize % 4), r * 37))
        .collect();
    let injected = run_service_chaos(
        &shapes,
        plan,
        oaken_runtime::default_threads(),
        PreemptPolicy::default_policy(),
        Some(120),
        0xA11CE,
    );
    // The fixed seed at 10% is dense enough to actually fire.
    assert!(injected > 0, "the chaos pass must inject something");
}

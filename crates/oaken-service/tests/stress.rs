//! Concurrency stress: many client threads submitting, streaming, and
//! cancelling against one live service at once. The obligations are
//! liveness and hygiene, not timing: no deadlock, every handle reaches a
//! terminal state, every delivered stream is a bit-exact prefix of the
//! uninterrupted `Session` decode, the engine's terminal accounting adds
//! up, and the KV pool drains *exactly* empty after shutdown — zero
//! pages, zero shared blocks, zero host residue, zero sequences, on
//! every rank shard.
//!
//! Runs under the CI env matrix (`OAKEN_THREADS`, `OAKEN_PREEMPT`,
//! `OAKEN_KERNEL`, `OAKEN_RANKS`): the engine knobs stay env-driven here
//! so each CI pass stresses a different configuration.

mod common;

use common::*;
use oaken_service::{serve, SessionEnd, StreamEvent};
use oaken_serving::{AdmissionPolicy, EngineConfig, RequestOutcome, TokenScheduler};

const CLIENTS: u64 = 6;
const PER_CLIENT: u64 = 5;

/// Drains a handle by hand (recv loop rather than `wait`), optionally
/// firing a cancel after the second token — the racy mid-stream path a
/// real client takes.
fn drain_streaming(
    handle: oaken_service::SessionHandle,
    cancel_after: Option<usize>,
) -> (Vec<u32>, SessionEnd) {
    let mut tokens = Vec::new();
    loop {
        match handle.recv().expect("stream stays open until Done") {
            StreamEvent::Token(t) => {
                assert_eq!(t.index, tokens.len(), "stream indices are dense");
                tokens.push(t.token);
                if Some(tokens.len()) == cancel_after {
                    handle.cancel();
                }
            }
            StreamEvent::Done(end) => return (tokens, end),
        }
    }
}

#[test]
fn concurrent_clients_stream_cancel_and_drain_clean() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    // Engine knobs stay env-driven (thread count, preemption policy,
    // kernel mode, ranks) so the CI matrix varies them under load.
    let cfg = EngineConfig {
        max_batch: 4,
        admission: AdmissionPolicy::PromptOnly,
        prefill_token_budget: 8,
        ..EngineConfig::default()
    };
    let pool = service_pool(&model, &quantizer, 256, 128);

    let (all, report) = serve(&model, pool, TokenScheduler::new(4), cfg, |client| {
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for c in 0..CLIENTS {
                workers.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    for j in 0..PER_CLIENT {
                        let id = c * 100 + j;
                        let req = request_for(id, 3 + (id as usize % 6), 3 + (id as usize % 5));
                        let want = req.max_new_tokens;
                        let handle = client.submit(req);
                        // Every third request cancels itself mid-stream;
                        // the rest are drained to completion.
                        let cancel_after = (j % 3 == 0).then_some(2);
                        let (tokens, end) = drain_streaming(handle, cancel_after);
                        out.push((id, want, tokens, end));
                    }
                    out
                }));
            }
            // A hostile client: cancels ids that never existed and ids
            // that likely already retired — must be absorbed as no-ops.
            let noise = scope.spawn(move || {
                for k in 0..50u64 {
                    client.cancel(1_000_000 + k);
                    client.cancel(k % (CLIENTS * 100));
                }
            });
            noise.join().expect("noise client");
            let mut all = Vec::new();
            for w in workers {
                all.extend(w.join().expect("client thread"));
            }
            all
        })
    });

    assert_eq!(
        all.len(),
        (CLIENTS * PER_CLIENT) as usize,
        "every handle terminal"
    );
    let mut finished = 0u64;
    let mut cancelled = 0u64;
    for (id, want, tokens, end) in &all {
        // The hostile canceller may have legitimately cancelled a live
        // request (ids overlap by construction), so either terminal is
        // acceptable — but the stream must be a bit-exact prefix of the
        // uninterrupted Session decode either way.
        let prompt = prompt_for(*id, 3 + (*id as usize % 6));
        let reference = session_decode(&model, &quantizer, &prompt, *want);
        assert!(
            tokens.len() <= reference.len() && tokens[..] == reference[..tokens.len()],
            "request {id}: stream is not a prefix of the Session reference"
        );
        match end.outcome {
            RequestOutcome::Finished => {
                finished += 1;
                assert_eq!(tokens, &reference, "request {id}: finished but short");
                assert_eq!(&end.generated, tokens, "request {id}: terminal tokens");
            }
            RequestOutcome::Cancelled => cancelled += 1,
            other => panic!("request {id}: unexpected terminal {other:?}"),
        }
    }
    assert!(finished > 0, "some requests must outrun their cancels");
    assert!(cancelled > 0, "self-cancels after two tokens must land");

    // Terminal accounting: every submission is retired, cancelled,
    // failed, or killed — and this workload can only finish or cancel.
    let s = &report.stats;
    assert_eq!(s.failed + s.deadline_kills, 0, "no failures injected");
    assert_eq!(s.retired, finished, "retired == finished handles");
    assert_eq!(
        s.cancellations, cancelled,
        "cancellations == cancelled handles"
    );
    assert_eq!(s.retired + s.cancellations, CLIENTS * PER_CLIENT);

    // The hygiene obligation: the pool drains exactly empty.
    assert!(
        report.drained_empty(),
        "pool residue after shutdown: {:?}",
        report.drain
    );
    for (rank, d) in report.drain.iter().enumerate() {
        assert_eq!(d.free_pages, d.capacity_pages, "rank {rank} free pages");
        assert_eq!(
            (d.private_pages, d.shared_block_pages, d.host_pages_used),
            (0, 0, 0),
            "rank {rank} page residue"
        );
        assert_eq!(
            (d.active_seqs, d.suspended_seqs),
            (0, 0),
            "rank {rank} sequence residue"
        );
    }
}

/// Submissions racing shutdown: the service must still drive every
/// accepted request to a terminal state before the engine thread exits —
/// `serve` only returns after the mailbox and engine are fully drained.
#[test]
fn shutdown_drains_in_flight_work() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let cfg = EngineConfig {
        max_batch: 3,
        admission: AdmissionPolicy::PromptOnly,
        prefill_token_budget: 8,
        ..EngineConfig::default()
    };
    let pool = service_pool(&model, &quantizer, 256, 128);

    let (handles, report) = serve(&model, pool, TokenScheduler::new(4), cfg, |client| {
        // Submit and return immediately — shutdown is flagged while all
        // of these are still queued or mid-decode.
        (0..8u64)
            .map(|id| client.submit(request_for(id, 5, 6)))
            .collect::<Vec<_>>()
    });
    // The engine thread has already exited; the streams must be complete.
    for h in handles {
        let res = h.wait();
        assert_eq!(
            res.end.outcome,
            RequestOutcome::Finished,
            "request {}",
            res.id
        );
        let reference = session_decode(&model, &quantizer, &prompt_for(res.id, 5), 6);
        assert_eq!(res.tokens, reference, "request {}", res.id);
    }
    assert_eq!(report.stats.retired, 8);
    assert!(report.drained_empty(), "{:?}", report.drain);
}

//! Cancellation matrix through the service frontend: a request is
//! cancelled via its `SessionHandle` while parked in each distinct spot —
//! batcher-scheduled (never reaches the engine), engine-queued, active
//! mid-chunked-prefill, active mid-decode, swap-suspended, and resume
//! head — and every case must leave zero residue (pool drains exactly
//! empty) with all *survivors* bit-exact against a direct replay of the
//! same schedule-plus-cancel, matching the engine-side cancellation
//! tests spot for spot.
//!
//! The coordinates are found by **rehearsal**: a cancel-free direct
//! engine is driven through the exact service tick protocol while the
//! id-introspection accessors record which spot each request occupies at
//! each tick. Because evolution up to the cancel tick is cancel-free and
//! the engine is deterministic, a `(tick, id)` sampled from the
//! rehearsal is guaranteed to catch the request in that spot when the
//! service run applies the scripted cancel.

mod common;

use common::*;
use oaken_service::{replay_open_loop_direct, serve};
use oaken_serving::{
    AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, PreemptPolicy, RequestOutcome,
    TokenScheduler,
};

/// The distinct parking spots a cancel can catch a request in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Spot {
    /// In the engine's admission queue.
    Queued,
    /// Active, still consuming prompt chunks.
    Prefill,
    /// Active, decoding.
    Decode,
    /// Swapped to the host tier, not at the resume head.
    Swapped,
    /// Next in line to be swapped back in.
    ResumeHead,
}

/// Geometry that loads every parking spot: the quantized pool's
/// worst-case bound is a flat 64 pages per sequence (one page per KV
/// stream) plus append headroom, so a 320-page device tier sustains a
/// couple of actives while optimistic swap admission parks the rest on
/// the deep host tier — the suspension queue stays several sequences
/// long while the engine round-robins through them, every request can
/// still finish alone, and queued / chunked-prefill / decode / swapped /
/// resume-head are all occupied for long stretches.
fn matrix_requests() -> Vec<EngineRequest> {
    (0..6u64)
        .map(|id| {
            let prompt = (0..20u32)
                .map(|i| (id as u32 * 61 + i * 17 + 101) % 256)
                .collect();
            EngineRequest::new(id, prompt, 30)
        })
        .collect()
}

fn matrix_config() -> EngineConfig {
    EngineConfig {
        max_batch: 3,
        admission: AdmissionPolicy::PromptOnly,
        preempt: PreemptPolicy::SwapToHost,
        prefill_token_budget: 8,
        num_threads: 2,
        ..EngineConfig::default()
    }
}

/// Drives a cancel-free direct engine through the service tick protocol,
/// recording `(tick, spot, id)` occupancy at each tick's
/// cancel-application point (post-arrival, pre-step).
fn rehearse_spots(
    model: &oaken_model::Model,
    quantizer: &std::sync::Arc<dyn oaken_core::KvQuantizer>,
) -> Vec<(u64, Spot, u64)> {
    let pool = service_pool(model, quantizer, 320, 448);
    let mut engine = BatchEngine::new(model, pool, TokenScheduler::new(4), matrix_config());
    for req in matrix_requests() {
        engine.submit(req);
    }
    let mut spots = Vec::new();
    let mut clock = 0u64;
    loop {
        for id in engine.queued_ids() {
            spots.push((clock, Spot::Queued, id));
        }
        for id in engine.active_ids() {
            let (pos, prompt_len) = engine.active_progress(id).expect("active id has progress");
            let spot = if pos < prompt_len {
                Spot::Prefill
            } else {
                Spot::Decode
            };
            spots.push((clock, spot, id));
        }
        for (i, id) in engine.suspended_ids().into_iter().enumerate() {
            spots.push((
                clock,
                if i == 0 {
                    Spot::ResumeHead
                } else {
                    Spot::Swapped
                },
                id,
            ));
        }
        if !engine.step() {
            break;
        }
        clock += 1;
    }
    spots
}

/// Picks a mid-occupancy `(tick, id)` coordinate for a spot (skipping
/// tick 0, where everything is trivially queued).
fn coordinate_for(spots: &[(u64, Spot, u64)], want: Spot) -> (u64, u64) {
    let hits: Vec<_> = spots
        .iter()
        .filter(|&&(t, s, _)| s == want && t > 0)
        .collect();
    assert!(
        !hits.is_empty(),
        "rehearsal never parked a request in {want:?} — geometry regressed"
    );
    let &&(t, _, id) = &hits[hits.len() / 2];
    (t, id)
}

/// Runs the full schedule through the service with one scripted cancel,
/// asserting the cancelled request terminates as Cancelled, survivors
/// are bit-exact with the direct replay and the Session reference, and
/// the pool drains exactly empty.
fn run_cancel_case(
    model: &oaken_model::Model,
    quantizer: &std::sync::Arc<dyn oaken_core::KvQuantizer>,
    spot: Spot,
    tick: u64,
    victim: u64,
) {
    let schedule: Vec<_> = matrix_requests().into_iter().map(|r| (r, 0u64)).collect();
    let (results, report) = serve(
        model,
        service_pool(model, quantizer, 320, 448),
        TokenScheduler::new(4),
        matrix_config(),
        |client| {
            let handles = client.submit_schedule(schedule.iter().cloned());
            client.cancel_at(victim, tick);
            handles.into_iter().map(|h| h.wait()).collect::<Vec<_>>()
        },
    );
    let replay = replay_open_loop_direct(
        model,
        service_pool(model, quantizer, 320, 448),
        TokenScheduler::new(4),
        matrix_config(),
        schedule.clone(),
        &[(tick, victim)],
    );

    let ctx = format!("spot={spot:?} tick={tick} victim={victim}");
    for res in &results {
        let direct = replay.finished_for(res.id);
        let timing = replay.timing_for(res.id);
        assert_eq!(res.end.outcome, direct.outcome, "{ctx}: request {}", res.id);
        assert_eq!(
            res.tokens, timing.tokens,
            "{ctx}: request {} stream",
            res.id
        );
        assert_eq!(
            res.token_clocks, timing.token_clocks,
            "{ctx}: request {} clocks",
            res.id
        );
        if res.id == victim {
            assert_eq!(
                res.end.outcome,
                RequestOutcome::Cancelled,
                "{ctx}: victim must cancel"
            );
        } else {
            assert_eq!(
                res.end.outcome,
                RequestOutcome::Finished,
                "{ctx}: survivor {} must finish",
                res.id
            );
            let (req, _) = schedule
                .iter()
                .find(|(r, _)| r.id == res.id)
                .expect("in schedule");
            let reference = session_decode(model, quantizer, &req.prompt, req.max_new_tokens);
            assert_eq!(
                res.tokens, reference,
                "{ctx}: survivor {} != uninterrupted Session",
                res.id
            );
        }
    }
    assert_eq!(report.stats, replay.stats, "{ctx}: stats");
    assert_eq!(
        report.stats.cancellations, 1,
        "{ctx}: one engine-side cancel"
    );
    assert!(report.drained_empty(), "{ctx}: residue {:?}", report.drain);
}

#[test]
fn cancel_in_every_engine_parking_spot_leaves_zero_residue() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let spots = rehearse_spots(&model, &quantizer);
    for spot in [
        Spot::Queued,
        Spot::Prefill,
        Spot::Decode,
        Spot::Swapped,
        Spot::ResumeHead,
    ] {
        let (tick, victim) = coordinate_for(&spots, spot);
        run_cancel_case(&model, &quantizer, spot, tick, victim);
    }
}

/// The sixth spot: parked in the *batcher* schedule, never injected. The
/// service resolves the cancel client-side — the engine never sees the
/// request, so its cancellation counter stays zero — and the stream
/// still delivers a clean Cancelled terminal.
#[test]
fn cancel_while_batcher_parked_never_reaches_engine() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let mut schedule: Vec<_> = matrix_requests()
        .into_iter()
        .take(3)
        .map(|r| (r, 0u64))
        .collect();
    // Parked far in the future; cancelled long before arrival.
    schedule.push((EngineRequest::new(9, prompt_for(9, 10), 5), 500));
    let (results, report) = serve(
        &model,
        service_pool(&model, &quantizer, 320, 448),
        TokenScheduler::new(4),
        matrix_config(),
        |client| {
            let handles = client.submit_schedule(schedule.iter().cloned());
            client.cancel_at(9, 3);
            handles.into_iter().map(|h| h.wait()).collect::<Vec<_>>()
        },
    );
    let replay = replay_open_loop_direct(
        &model,
        service_pool(&model, &quantizer, 320, 448),
        TokenScheduler::new(4),
        matrix_config(),
        schedule.clone(),
        &[(3, 9)],
    );

    let parked = results
        .iter()
        .find(|r| r.id == 9)
        .expect("handle 9 terminal");
    assert_eq!(parked.end.outcome, RequestOutcome::Cancelled);
    assert!(parked.tokens.is_empty(), "never decoded");
    assert_eq!(parked.end.ttft_iteration, 0);
    assert_eq!(report.stats.cancellations, 0, "engine never saw request 9");
    assert_eq!(report.stats.admitted, 3, "only the three real arrivals");
    assert_eq!(report.stats, replay.stats);
    for res in results.iter().filter(|r| r.id != 9) {
        assert_eq!(res.end.outcome, RequestOutcome::Finished);
        assert_eq!(
            res.tokens,
            replay.timing_for(res.id).tokens,
            "request {}",
            res.id
        );
        assert_eq!(
            res.token_clocks,
            replay.timing_for(res.id).token_clocks,
            "request {}",
            res.id
        );
    }
    assert!(report.drained_empty(), "{:?}", report.drain);
}

//! Open-loop workload driver: seeded arrival schedules (Poisson and
//! bursty), and a direct-engine replay of the service clock protocol.
//!
//! Open-loop means arrivals are scheduled by an external clock and do
//! *not* wait for earlier requests to finish — the load the server must
//! absorb is independent of how fast it serves, which is what makes tail
//! latency meaningful. Time is measured in **service-clock ticks**
//! (engine iterations plus idle gaps), not wall clock, so a schedule is
//! a pure function of its seed and every run of it is reproducible.
//!
//! [`replay_open_loop_direct`] feeds the same `(request, arrival)`
//! schedule straight into a bare [`BatchEngine`], driven by the *same*
//! tick-protocol implementation the engine thread runs
//! ([`crate::clock`]): inject due arrivals in `(arrival, index)` order,
//! apply due cancels, step, stamp deliveries with the pre-increment
//! clock, advance iff progressed or arrivals remain. With the
//! determinism contract the engine already guarantees, this makes
//! "service == direct" a bit-exact assertion, not a statistical one.

use crate::clock::{clock_tick, ArrivalQueue, ClockHooks};
use oaken_model::{Model, PagedKvPool};
use oaken_serving::{
    BatchEngine, EngineConfig, EngineRequest, EngineStats, FinishedRequest, TokenScheduler,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless arrivals: i.i.d. exponential inter-arrival gaps.
    Poisson,
    /// Bursty arrivals: requests land in back-to-back groups of `burst`,
    /// with exponential gaps between groups (mean scaled by `burst` so
    /// the long-run arrival *rate* matches a Poisson process with the
    /// same `mean_interarrival`).
    Bursty {
        /// Requests per burst (all share one arrival tick).
        burst: usize,
    },
}

/// A seeded open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSpec {
    /// Arrival shape.
    pub kind: ArrivalKind,
    /// Mean inter-arrival gap in service-clock ticks (the reciprocal of
    /// the arrival rate).
    pub mean_interarrival: f64,
    /// RNG seed — the schedule is a pure function of the spec.
    pub seed: u64,
}

impl OpenLoopSpec {
    /// Poisson arrivals at `1 / mean_interarrival` requests per tick.
    pub fn poisson(mean_interarrival: f64, seed: u64) -> Self {
        Self {
            kind: ArrivalKind::Poisson,
            mean_interarrival,
            seed,
        }
    }

    /// Bursty arrivals with the same long-run rate.
    pub fn bursty(mean_interarrival: f64, burst: usize, seed: u64) -> Self {
        assert!(burst > 0, "burst must hold at least one request");
        Self {
            kind: ArrivalKind::Bursty { burst },
            mean_interarrival,
            seed,
        }
    }
}

/// Samples `n` arrival ticks (non-decreasing, starting at tick 0's
/// first gap) from the spec. Gaps are exponential via inverse-CDF on the
/// vendored `StdRng`, floored to integer ticks.
pub fn arrival_schedule(spec: &OpenLoopSpec, n: usize) -> Vec<u64> {
    assert!(
        spec.mean_interarrival >= 0.0,
        "mean inter-arrival must be non-negative"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut gap = |mean: f64| -> f64 {
        let u: f64 = rng.gen::<f64>();
        -mean * (1.0 - u).ln()
    };
    let mut out = Vec::with_capacity(n);
    match spec.kind {
        ArrivalKind::Poisson => {
            let mut t = 0.0f64;
            for _ in 0..n {
                t += gap(spec.mean_interarrival);
                out.push(t.floor() as u64);
            }
        }
        ArrivalKind::Bursty { burst } => {
            let mut t = 0.0f64;
            while out.len() < n {
                t += gap(spec.mean_interarrival * burst as f64);
                let tick = t.floor() as u64;
                for _ in 0..burst.min(n - out.len()) {
                    out.push(tick);
                }
            }
        }
    }
    out
}

/// Per-request delivery record from a direct replay — the comparator for
/// the service's streamed `SessionResult`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTiming {
    /// Request id.
    pub id: u64,
    /// Scheduled arrival tick.
    pub arrival: u64,
    /// Decode tokens in index order (restart re-emissions deduped, same
    /// as the service stream).
    pub tokens: Vec<u32>,
    /// Service-clock tick of each token's first emission.
    pub token_clocks: Vec<u64>,
}

/// Everything a direct replay produced.
#[derive(Debug, Clone)]
pub struct DirectReplay {
    /// Engine-terminal records, in retirement order.
    pub finished: Vec<FinishedRequest>,
    /// Delivery timings, in schedule order.
    pub timings: Vec<RequestTiming>,
    /// Final service-clock value.
    pub clock: u64,
    /// The engine's aggregate counters — a service run of the same
    /// schedule must produce an *identical* value (the tick protocols
    /// match step for step).
    pub stats: EngineStats,
}

impl DirectReplay {
    /// The terminal record for `id`.
    pub fn finished_for(&self, id: u64) -> &FinishedRequest {
        self.finished
            .iter()
            .find(|f| f.id == id)
            .expect("replay drove every request to a terminal state")
    }

    /// The delivery timing for `id`.
    pub fn timing_for(&self, id: u64) -> &RequestTiming {
        self.timings
            .iter()
            .find(|t| t.id == id)
            .expect("every scheduled request has a timing record")
    }
}

/// Replays an open-loop `(request, arrival)` schedule — plus optional
/// scripted `(tick, id)` cancels — directly against a bare
/// [`BatchEngine`], using the exact service tick protocol. The reference
/// half of every service-vs-direct bit-exactness assertion.
pub fn replay_open_loop_direct(
    model: &Model,
    pool: PagedKvPool,
    scheduler: TokenScheduler,
    config: EngineConfig,
    schedule: Vec<(EngineRequest, u64)>,
    cancels: &[(u64, u64)],
) -> DirectReplay {
    /// The replay's side of the tick protocol: bare submission on
    /// injection, timing records on delivery.
    struct ReplayHooks {
        timings: HashMap<u64, RequestTiming>,
    }

    impl ClockHooks<EngineRequest> for ReplayHooks {
        fn id_of(&self, req: &EngineRequest) -> u64 {
            req.id
        }

        fn inject(&mut self, engine: &mut BatchEngine<'_>, req: EngineRequest) {
            engine.submit(req);
        }

        fn cancelled_parked(&mut self, req: EngineRequest, _clock: u64) {
            // Cancelled while still schedule-parked: the service resolves
            // it client-side; here it simply never runs.
            self.timings.remove(&req.id);
        }

        fn deliver(&mut self, engine: &mut BatchEngine<'_>, clock: u64) {
            for ev in engine.take_token_events() {
                if let Some(t) = self.timings.get_mut(&ev.id) {
                    if ev.index == t.tokens.len() {
                        t.tokens.push(ev.token);
                        t.token_clocks.push(clock);
                    }
                }
            }
        }
    }

    let mut engine = BatchEngine::new(model, pool, scheduler, config);
    let order: Vec<u64> = schedule.iter().map(|(req, _)| req.id).collect();
    let mut queue: ArrivalQueue<EngineRequest> = ArrivalQueue::new();
    let mut hooks = ReplayHooks {
        timings: HashMap::new(),
    };
    for (req, arrival) in schedule {
        hooks.timings.insert(
            req.id,
            RequestTiming {
                id: req.id,
                arrival,
                tokens: Vec::new(),
                token_clocks: Vec::new(),
            },
        );
        queue.schedule(arrival, req);
    }
    for &(at, id) in cancels {
        queue.schedule_cancel(at, id);
    }
    let mut clock: u64 = 0;

    loop {
        let engine_idle =
            engine.active_len() == 0 && engine.queue_len() == 0 && engine.resume_len() == 0;
        if engine_idle && !queue.has_pending() {
            break;
        }
        clock_tick(&mut engine, &mut clock, &mut queue, &mut hooks);
    }

    let finished = engine.finished().to_vec();
    let stats = engine.stats().clone();
    let timings = order
        .iter()
        .filter_map(|id| hooks.timings.remove(id))
        .collect();
    DirectReplay {
        finished,
        timings,
        clock,
        stats,
    }
}

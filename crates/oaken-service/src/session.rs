//! Per-request session handles: the client half of the service's
//! streaming delivery.
//!
//! Every submission returns a [`SessionHandle`] wrapping a *bounded*
//! `std::sync::mpsc` channel. The bound is `max_new_tokens + 1` — enough
//! for every token the request can ever produce plus its terminal
//! [`StreamEvent::Done`] — so the engine thread's sends can **never
//! block** on a slow or absent consumer: streaming delivery is
//! observationally downstream of the engine and cannot perturb its
//! deterministic iteration loop (and a full-channel deadlock is
//! impossible by construction).

use crate::batcher::Batcher;
use oaken_serving::RequestOutcome;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;

/// One streamed decode token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamToken {
    /// 0-based decode index within the request's output. Strictly
    /// increasing per handle: the engine thread dedups the re-emissions
    /// of an evicted-and-restarted request, so the client never sees an
    /// index twice.
    pub index: usize,
    /// The token.
    pub token: u32,
    /// Service-clock tick that delivered the token (iteration time, not
    /// wall clock — the substrate of the TTFT / inter-token metrics).
    pub clock: u64,
}

/// Terminal state of a session, delivered exactly once after the last
/// token.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEnd {
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// The engine's final output tokens. Equal to the streamed tokens for
    /// finished requests. For a request cancelled between an eviction and
    /// the end of its restart's re-decode it can be a *prefix* of the
    /// streamed tokens: the stream is the user-visible truth (those
    /// tokens were delivered before the eviction; the restart recomputes
    /// the identical values).
    pub generated: Vec<u32>,
    /// Engine iteration (1-based) of the request's first decode token; 0
    /// if it never decoded.
    pub ttft_iteration: u64,
    /// Times the request was preempted (evicted or suspended).
    pub preemptions: usize,
    /// Service-clock tick at which the terminal state was delivered.
    pub clock: u64,
}

/// One delivery on a session's stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A decode token.
    Token(StreamToken),
    /// The terminal state; nothing follows it.
    Done(SessionEnd),
}

/// Everything a drained session produced — see [`SessionHandle::wait`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Request id.
    pub id: u64,
    /// Streamed tokens in index order.
    pub tokens: Vec<u32>,
    /// Service-clock tick of each streamed token (same length as
    /// `tokens`) — the raw material of TTFT / inter-token latency.
    pub token_clocks: Vec<u64>,
    /// The terminal state.
    pub end: SessionEnd,
}

/// The client half of one in-flight request: a live token stream plus
/// mid-decode cancellation. Dropping the handle without draining is safe
/// — the bounded channel absorbs every send — but does *not* cancel the
/// request; call [`cancel`](Self::cancel) to stop the engine-side work.
pub struct SessionHandle {
    id: u64,
    rx: Receiver<StreamEvent>,
    batcher: Arc<Batcher>,
}

impl SessionHandle {
    pub(crate) fn new(id: u64, rx: Receiver<StreamEvent>, batcher: Arc<Batcher>) -> Self {
        Self { id, rx, batcher }
    }

    /// The request id this handle streams.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks for the next delivery; `None` after the terminal
    /// [`StreamEvent::Done`] has been consumed (the sender is dropped
    /// with it).
    pub fn recv(&self) -> Option<StreamEvent> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll: `Ok(Some(_))` on a delivery, `Ok(None)` when
    /// the stream is open but empty, `Err(())` once closed.
    #[allow(clippy::result_unit_err)]
    pub fn try_recv(&self) -> Result<Option<StreamEvent>, ()> {
        match self.rx.try_recv() {
            Ok(ev) => Ok(Some(ev)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(()),
        }
    }

    /// Requests cancellation wherever the request is parked (batcher
    /// schedule, engine queue, active batch, host tier, resume head).
    /// Asynchronous: the terminal outcome still arrives on the stream —
    /// [`RequestOutcome::Cancelled`] if the cancel won the race,
    /// [`RequestOutcome::Finished`] if the request retired first.
    pub fn cancel(&self) {
        self.batcher.cancel(self.id);
    }

    /// Drains the stream to its terminal state, collecting every token.
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the stream without a terminal event
    /// — that is a service bug (the engine thread always delivers
    /// [`StreamEvent::Done`] before releasing a session).
    pub fn wait(self) -> SessionResult {
        let mut tokens = Vec::new();
        let mut token_clocks = Vec::new();
        loop {
            match self.rx.recv() {
                Ok(StreamEvent::Token(t)) => {
                    debug_assert_eq!(t.index, tokens.len(), "stream indices are dense");
                    tokens.push(t.token);
                    token_clocks.push(t.clock);
                }
                Ok(StreamEvent::Done(end)) => {
                    return SessionResult {
                        id: self.id,
                        tokens,
                        token_clocks,
                        end,
                    };
                }
                Err(_) => panic!("session {} stream closed without a terminal event", self.id),
            }
        }
    }
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.id)
            .finish()
    }
}

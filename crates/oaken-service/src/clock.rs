//! The deterministic service-clock tick protocol, shared by every
//! driver that steps a [`BatchEngine`] against scheduled arrivals.
//!
//! Three drivers run this exact protocol — the live engine thread behind
//! [`serve`](crate::serve), the bare-engine reference replay
//! [`replay_open_loop_direct`](crate::workload::replay_open_loop_direct),
//! and the disaggregated cluster's per-engine clocks — and the
//! service-vs-direct (and cluster-vs-monolithic) bit-exactness contracts
//! hold precisely because it is *one* implementation, not three copies
//! that could drift. One tick:
//!
//! 1. inject every scheduled arrival with `arrival <= clock`, in
//!    `(arrival, submission order)` order;
//! 2. apply every due cancel — after arrivals, so a cancel scripted for
//!    a request's own arrival tick catches it in the engine queue; a
//!    cancel that finds its target still schedule-parked resolves
//!    driver-side (the request never reaches the engine);
//! 3. `engine.step()` once;
//! 4. deliver this step's tokens and terminals, stamped with the current
//!    (pre-increment) clock;
//! 5. advance the clock iff the step progressed or arrivals remain
//!    scheduled.
//!
//! The driver-specific halves — what injection registers, how deliveries
//! are recorded — live behind [`ClockHooks`].

use oaken_serving::BatchEngine;

/// Driver-specific callbacks for one clock tick. `T` is whatever the
/// driver parks in its [`ArrivalQueue`] — a bare
/// [`EngineRequest`](oaken_serving::EngineRequest) for a replay, a
/// submission with its client channel for the live service.
pub trait ClockHooks<T> {
    /// The request id carried by a parked item (cancel targeting).
    fn id_of(&self, item: &T) -> u64;

    /// A due arrival: register whatever the driver tracks, then submit
    /// to the engine.
    fn inject(&mut self, engine: &mut BatchEngine<'_>, item: T);

    /// A due cancel that caught its target still schedule-parked: the
    /// request never reaches the engine; resolve it driver-side, stamped
    /// with the current clock.
    fn cancelled_parked(&mut self, item: T, clock: u64);

    /// Post-step delivery, stamped with the pre-increment clock: drain
    /// [`BatchEngine::take_token_events`] (deduping restart re-emissions
    /// by decode index) and any newly finished requests.
    fn deliver(&mut self, engine: &mut BatchEngine<'_>, clock: u64);
}

/// Scheduled-but-not-yet-injected arrivals and cancels for one engine,
/// with the protocol's deterministic injection order baked in.
#[derive(Debug)]
pub struct ArrivalQueue<T> {
    /// Monotone submission counter — the injection-order tiebreak for
    /// arrivals scheduled on the same tick.
    next_seq: u64,
    /// `(arrival tick, submission order, item)`.
    pending: Vec<(u64, u64, T)>,
    /// `(due tick, request id)`.
    cancels: Vec<(u64, u64)>,
}

impl<T> Default for ArrivalQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ArrivalQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            next_seq: 0,
            pending: Vec::new(),
            cancels: Vec::new(),
        }
    }

    /// Parks an item for injection once the clock reaches `arrival`
    /// (drivers clamp a past arrival to the current clock themselves —
    /// the replay's schedule is absolute, the live service's is not).
    pub fn schedule(&mut self, arrival: u64, item: T) {
        self.pending.push((arrival, self.next_seq, item));
        self.next_seq += 1;
    }

    /// Scripts a cancel of request `id` for tick `at`.
    pub fn schedule_cancel(&mut self, at: u64, id: u64) {
        self.cancels.push((at, id));
    }

    /// Whether any arrival is still parked (the clock keeps ticking over
    /// an idle engine while this holds — open-loop gaps burn ticks).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Drops every scripted cancel — nothing a cancel could still target
    /// (the live service calls this when fully idle so a stray cancel for
    /// a retired id cannot wedge its shutdown test).
    pub fn clear_cancels(&mut self) {
        self.cancels.clear();
    }

    /// Removes and returns every arrival with `arrival <= clock`, in the
    /// protocol's `(arrival, submission order)` injection order. The
    /// building block multi-engine drivers (the cluster router) consume
    /// directly — routing each due item to an engine of their choosing —
    /// so the ordering rule exists in exactly one place.
    pub fn take_due(&mut self, clock: u64) -> Vec<T> {
        self.pending
            .sort_by_key(|&(arrival, seq, _)| (arrival, seq));
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= clock {
                let (_, _, item) = self.pending.remove(i);
                due.push(item);
            } else {
                i += 1;
            }
        }
        due
    }

    /// Removes and returns the ids of every cancel with `due <= clock`,
    /// in scripted order. Applied *after* [`take_due`](Self::take_due)
    /// within a tick, so a cancel scripted for its target's own arrival
    /// tick catches it post-injection.
    pub fn due_cancels(&mut self, clock: u64) -> Vec<u64> {
        let mut due = Vec::new();
        let mut j = 0;
        while j < self.cancels.len() {
            if self.cancels[j].0 <= clock {
                let (_, id) = self.cancels.remove(j);
                due.push(id);
            } else {
                j += 1;
            }
        }
        due
    }

    /// Removes the still-parked item with the given id, if any — how a
    /// due cancel resolves against a not-yet-injected arrival.
    pub fn remove_parked(&mut self, id: u64, id_of: impl Fn(&T) -> u64) -> Option<T> {
        let p = self.pending.iter().position(|(_, _, it)| id_of(it) == id)?;
        let (_, _, item) = self.pending.remove(p);
        Some(item)
    }

    /// Protocol steps 1–2 against a single engine: inject due arrivals,
    /// then apply due cancels (schedule-parked targets resolve through
    /// [`ClockHooks::cancelled_parked`], injected ones through
    /// [`BatchEngine::cancel`]).
    pub fn inject_due(
        &mut self,
        engine: &mut BatchEngine<'_>,
        clock: u64,
        hooks: &mut impl ClockHooks<T>,
    ) {
        for item in self.take_due(clock) {
            hooks.inject(engine, item);
        }
        for id in self.due_cancels(clock) {
            if let Some(item) = self.remove_parked(id, |it| hooks.id_of(it)) {
                hooks.cancelled_parked(item, clock);
            } else {
                engine.cancel(id);
            }
        }
    }
}

/// One full service-clock tick (protocol steps 1–5) against a single
/// engine. Returns whether the engine step made progress.
pub fn clock_tick<T>(
    engine: &mut BatchEngine<'_>,
    clock: &mut u64,
    queue: &mut ArrivalQueue<T>,
    hooks: &mut impl ClockHooks<T>,
) -> bool {
    queue.inject_due(engine, *clock, hooks);
    let progressed = engine.step();
    hooks.deliver(engine, *clock);
    if progressed || queue.has_pending() {
        *clock += 1;
    }
    progressed
}

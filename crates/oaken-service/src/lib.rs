//! Streaming service frontend over the continuous-batching engine: the
//! layer that turns `oaken-serving`'s [`BatchEngine`] iteration loop
//! into a concurrent, cancellable, latency-measured serving system —
//! without an async runtime (`std::thread` + `Mutex`/`Condvar` only,
//! matching `oaken-runtime`'s style).
//!
//! Architecture (InfiniLM-style service / session / batcher split):
//!
//! - [`Batcher`] — the request queue: a `Mutex` + `Condvar` mailbox that
//!   any number of client threads push submissions and cancellations
//!   into, drained by the single engine thread at the top of every loop
//!   pass.
//! - [`serve`] — spawns the engine thread (scoped, so it borrows
//!   `&Model` directly), runs your closure against a [`ServiceClient`],
//!   then shuts down and returns a [`ServiceReport`] with engine stats
//!   and per-rank pool-drain accounting.
//! - [`SessionHandle`] — one per submission: a bounded-channel token
//!   stream ([`StreamEvent`]) with mid-decode
//!   [`cancel`](SessionHandle::cancel) and a terminal
//!   [`RequestOutcome`].
//! - [`workload`] — seeded open-loop arrival schedules (Poisson /
//!   bursty, measured in engine iterations for reproducibility) and
//!   [`replay_open_loop_direct`], which drives a bare engine through the
//!   identical tick protocol so tests and benches can assert the service
//!   is **bit-exact** with a direct engine run.
//! - [`metrics`] — per-class p50/p95/p99 time-to-first-token and
//!   inter-token latency over service-clock ticks.
//!
//! The determinism contract the engine already enforces (per-sequence
//! streams identical across thread counts, rank counts, kernel modes,
//! and preemption policies) lifts through this layer: with a seeded
//! arrival schedule, service-delivered token streams are bit-identical
//! to the same workload fed directly to the engine — the property pinned
//! by `tests/service_props.rs`.

pub mod batcher;
pub mod clock;
pub mod metrics;
pub mod service;
pub mod session;
pub mod workload;

pub use batcher::Batcher;
pub use clock::{clock_tick, ArrivalQueue, ClockHooks};
pub use metrics::{ClassLatency, LatencyRecorder, Percentiles};
pub use service::{serve, PoolDrain, ServiceClient, ServiceReport};
pub use session::{SessionEnd, SessionHandle, SessionResult, StreamEvent, StreamToken};
pub use workload::{
    arrival_schedule, replay_open_loop_direct, ArrivalKind, DirectReplay, OpenLoopSpec,
    RequestTiming,
};

// Re-exported so service users need only this crate for the common path.
pub use oaken_serving::{
    BatchEngine, EngineConfig, EngineRequest, EngineStats, FinishedRequest, PreemptPolicy,
    RequestOutcome, TokenScheduler,
};

//! The service's request queue: a plain `Mutex` + `Condvar` mailbox
//! between concurrent client threads and the single engine thread.
//!
//! Clients push commands (submissions, cancellations, shutdown) from
//! any thread; the engine thread drains the whole mailbox at the top of
//! every loop iteration (`Batcher::drain`) and blocks on the condvar
//! only when it is completely idle (`Batcher::wait`). No async runtime
//! is involved — `std::thread` only, matching `oaken-runtime`'s style —
//! and the engine's deterministic iteration loop is never entered while
//! holding the lock, so client threads can never stall an engine step.

use crate::session::StreamEvent;
use oaken_serving::EngineRequest;
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};

/// One submission handed from a client thread to the engine thread.
pub(crate) struct Submission {
    /// The request to run.
    pub req: EngineRequest,
    /// Service-clock tick at which the engine thread injects the request
    /// (the open-loop arrival schedule); `None` injects it as soon as the
    /// engine thread sees it (live-service semantics).
    pub arrival: Option<u64>,
    /// Streaming delivery channel (bounded to `max_new_tokens + 1`, so
    /// the engine thread's sends can never block).
    pub tx: SyncSender<StreamEvent>,
}

/// A client→engine command.
pub(crate) enum Command {
    /// Run a request, streaming its tokens back.
    Submit(Submission),
    /// Cancel a request wherever it is parked — batcher-scheduled, queued
    /// in the engine, active, suspended, or resume head. `at` defers the
    /// cancellation to a service-clock tick (scripted cancels stay
    /// deterministic); `None` applies it as soon as the engine thread
    /// sees it.
    Cancel { id: u64, at: Option<u64> },
}

struct MailboxState {
    commands: VecDeque<Command>,
    shutdown: bool,
}

/// The Mutex + Condvar mailbox. See the module docs.
pub struct Batcher {
    state: Mutex<MailboxState>,
    ready: Condvar,
}

impl Batcher {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(MailboxState {
                commands: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Pushes one command and wakes the engine thread.
    pub(crate) fn push(&self, cmd: Command) {
        let mut s = self.state.lock().expect("batcher lock");
        s.commands.push_back(cmd);
        self.ready.notify_all();
    }

    /// Pushes a whole batch of commands under one lock acquisition: the
    /// engine thread wakes to the *complete* set, which is what keeps a
    /// pre-built open-loop schedule deterministic (the engine cannot
    /// observe a half-pushed schedule).
    pub(crate) fn push_all(&self, cmds: impl IntoIterator<Item = Command>) {
        let mut s = self.state.lock().expect("batcher lock");
        s.commands.extend(cmds);
        self.ready.notify_all();
    }

    /// Requests a cancellation (client-facing; see `Command::Cancel`).
    pub fn cancel(&self, id: u64) {
        self.push(Command::Cancel { id, at: None });
    }

    /// Flags shutdown and wakes the engine thread. Commands already
    /// queued are still processed; the engine thread exits once it has
    /// drained the mailbox and finished all in-flight work.
    pub fn shutdown(&self) {
        let mut s = self.state.lock().expect("batcher lock");
        s.shutdown = true;
        self.ready.notify_all();
    }

    /// Takes every queued command without blocking; also returns whether
    /// shutdown has been flagged.
    pub(crate) fn drain(&self) -> (Vec<Command>, bool) {
        let mut s = self.state.lock().expect("batcher lock");
        (s.commands.drain(..).collect(), s.shutdown)
    }

    /// Blocks until at least one command arrives or shutdown is flagged,
    /// then drains. Used only when the engine thread is completely idle —
    /// the service clock is frozen while waiting here.
    pub(crate) fn wait(&self) -> (Vec<Command>, bool) {
        let mut s = self.state.lock().expect("batcher lock");
        while s.commands.is_empty() && !s.shutdown {
            s = self.ready.wait(s).expect("batcher condvar");
        }
        (s.commands.drain(..).collect(), s.shutdown)
    }
}

impl Default for Batcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;
    use std::sync::Arc;

    fn submission(id: u64) -> Command {
        let (tx, _rx) = sync_channel(2);
        Command::Submit(Submission {
            req: EngineRequest::new(id, vec![1, 2], 1),
            arrival: None,
            tx,
        })
    }

    #[test]
    fn drain_is_fifo_and_nonblocking() {
        let b = Batcher::new();
        let (cmds, sd) = b.drain();
        assert!(cmds.is_empty() && !sd);
        b.push(submission(0));
        b.push(Command::Cancel { id: 0, at: None });
        let (cmds, sd) = b.drain();
        assert_eq!(cmds.len(), 2);
        assert!(!sd);
        assert!(matches!(cmds[0], Command::Submit(ref s) if s.req.id == 0));
        assert!(matches!(cmds[1], Command::Cancel { id: 0, at: None }));
    }

    #[test]
    fn wait_wakes_on_push_and_on_shutdown() {
        let b = Arc::new(Batcher::new());
        let b2 = b.clone();
        let t = std::thread::spawn(move || b2.wait());
        b.push(submission(7));
        let (cmds, sd) = t.join().expect("waiter");
        assert_eq!(cmds.len(), 1);
        assert!(!sd);

        let b3 = b.clone();
        let t = std::thread::spawn(move || b3.wait());
        b.shutdown();
        let (cmds, sd) = t.join().expect("waiter");
        assert!(cmds.is_empty());
        assert!(sd);
    }

    #[test]
    fn push_all_is_one_atomic_batch() {
        let b = Batcher::new();
        b.push_all((0..5).map(submission));
        let (cmds, _) = b.drain();
        assert_eq!(cmds.len(), 5);
    }
}

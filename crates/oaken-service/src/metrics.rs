//! Tail-latency metrics over service-clock deliveries: per-class
//! time-to-first-token and inter-token latency, reported as
//! nearest-rank p50 / p95 / p99.
//!
//! Every latency is measured in **service-clock ticks** (engine
//! iterations plus open-loop idle gaps), so the numbers are exactly
//! reproducible from a seeded arrival schedule — the recorder is pure
//! arithmetic over the clocks the service already stamps on each token.
//!
//! Conventions: a request arriving at tick `a` whose first token is
//! delivered at tick `c` has `TTFT = c - a + 1` (the `+1` counts the
//! delivering iteration itself, matching the engine's 1-based
//! `ttft_iteration` when the request arrives at tick 0 into an
//! otherwise-empty engine). Inter-token latency is the difference of
//! consecutive delivery ticks; a request with fewer than two tokens
//! contributes no ITL samples.

/// Nearest-rank percentiles over a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl Percentiles {
    /// Nearest-rank percentiles (ceil(p/100 · n)-th smallest sample).
    /// Returns all-zero for an empty sample set.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| -> u64 {
            let n = sorted.len();
            let k = ((p / 100.0) * n as f64).ceil() as usize;
            sorted[k.clamp(1, n) - 1]
        };
        Self {
            p50: rank(50.0),
            p95: rank(95.0),
            p99: rank(99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Aggregated latency report for one request class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassLatency {
    /// Class label (e.g. `"conversation"`, `"burstgpt"`).
    pub class: String,
    /// Requests recorded.
    pub requests: usize,
    /// Requests that never produced a token (no TTFT sample).
    pub tokenless: usize,
    /// Time-to-first-token percentiles, in ticks.
    pub ttft: Percentiles,
    /// Inter-token latency percentiles, in ticks.
    pub itl: Percentiles,
    /// ITL sample count backing `itl`.
    pub itl_samples: usize,
}

/// Accumulates per-request delivery clocks into per-class percentile
/// reports. Feed it either a service `SessionResult` (arrival +
/// `token_clocks`) or a replay `RequestTiming` — both carry the same
/// clocks, by construction.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    classes: Vec<(String, ClassSamples)>,
}

#[derive(Debug, Clone, Default)]
struct ClassSamples {
    requests: usize,
    tokenless: usize,
    ttft: Vec<u64>,
    itl: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request's deliveries: its class, arrival tick, and
    /// the service-clock tick of each streamed token (in order).
    pub fn record(&mut self, class: &str, arrival: u64, token_clocks: &[u64]) {
        let samples = match self.classes.iter_mut().find(|(c, _)| c == class) {
            Some((_, s)) => s,
            None => {
                self.classes
                    .push((class.to_string(), ClassSamples::default()));
                &mut self.classes.last_mut().expect("just pushed").1
            }
        };
        samples.requests += 1;
        match token_clocks.first() {
            Some(&first) => {
                debug_assert!(first >= arrival, "tokens cannot precede arrival");
                samples.ttft.push(first - arrival + 1);
            }
            None => samples.tokenless += 1,
        }
        for w in token_clocks.windows(2) {
            debug_assert!(w[1] >= w[0], "delivery clocks are non-decreasing");
            samples.itl.push(w[1] - w[0]);
        }
    }

    /// Total requests recorded across classes.
    pub fn requests(&self) -> usize {
        self.classes.iter().map(|(_, s)| s.requests).sum()
    }

    /// Per-class percentile reports, in first-recorded order.
    pub fn report(&self) -> Vec<ClassLatency> {
        self.classes
            .iter()
            .map(|(class, s)| ClassLatency {
                class: class.clone(),
                requests: s.requests,
                tokenless: s.tokenless,
                ttft: Percentiles::from_samples(&s.ttft),
                itl: Percentiles::from_samples(&s.itl),
                itl_samples: s.itl.len(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_hand_computation() {
        let p = Percentiles::from_samples(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(p.p50, 5);
        assert_eq!(p.p95, 10);
        assert_eq!(p.p99, 10);
        assert_eq!(p.max, 10);
        let p = Percentiles::from_samples(&[42]);
        assert_eq!((p.p50, p.p95, p.p99, p.max), (42, 42, 42, 42));
        assert_eq!(Percentiles::from_samples(&[]), Percentiles::default());
    }

    #[test]
    fn recorder_ttft_and_itl_conventions() {
        let mut rec = LatencyRecorder::new();
        // Arrived at 2, tokens at clocks 4, 6, 9: TTFT = 3, ITLs = 2, 3.
        rec.record("a", 2, &[4, 6, 9]);
        // Tokenless request: counted, no TTFT sample.
        rec.record("a", 0, &[]);
        let report = rec.report();
        assert_eq!(report.len(), 1);
        let a = &report[0];
        assert_eq!(a.requests, 2);
        assert_eq!(a.tokenless, 1);
        assert_eq!(a.ttft.p50, 3);
        assert_eq!(a.itl.p50, 2);
        assert_eq!(a.itl.max, 3);
        assert_eq!(a.itl_samples, 2);
    }

    #[test]
    fn classes_report_in_first_recorded_order() {
        let mut rec = LatencyRecorder::new();
        rec.record("conv", 0, &[1]);
        rec.record("burst", 0, &[2]);
        rec.record("conv", 0, &[3]);
        let report = rec.report();
        assert_eq!(report[0].class, "conv");
        assert_eq!(report[0].requests, 2);
        assert_eq!(report[1].class, "burst");
        assert_eq!(rec.requests(), 3);
    }
}

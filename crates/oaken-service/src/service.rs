//! The service itself: one engine thread driving the continuous-batching
//! [`BatchEngine`] iteration loop, fed by any number of concurrent client
//! threads through the [`Batcher`] mailbox.
//!
//! # The service clock
//!
//! Wall time is useless for a reproducibility contract, so the service
//! measures everything in **service-clock ticks** — one tick per engine
//! loop pass that either made progress (an engine iteration ran) or
//! burned an open-loop idle gap (the engine was empty but scheduled
//! arrivals are still due in the future). While the engine thread is
//! blocked in `Batcher::wait` — nothing running, nothing scheduled —
//! the clock is *frozen*: live idle time never pollutes latency numbers.
//!
//! Each tick runs the protocol of [`crate::clock`] — *the same code*
//! that [`replay_open_loop_direct`](crate::workload::replay_open_loop_direct)
//! and the disaggregated cluster drive, which is what makes
//! service-vs-direct bit-exactness assertable: drain the mailbox
//! (blocking only when fully idle), then one [`clock_tick`] — inject due
//! arrivals in `(arrival, submission order)` order, apply due cancels,
//! step, deliver stamped with the pre-increment clock, advance iff
//! progressed or arrivals remain scheduled.
//!
//! Token delivery dedups by decode index: an evicted-and-restarted
//! request re-emits its already-delivered tokens bit-identically, and the
//! service forwards only the first emission of each index, so client
//! streams are append-only even under preemption.

use crate::batcher::{Batcher, Command, Submission};
use crate::clock::{clock_tick, ArrivalQueue, ClockHooks};
use crate::session::{SessionEnd, SessionHandle, StreamEvent, StreamToken};
use oaken_model::{KernelMode, Model, PagedKvPool};
use oaken_serving::{
    BatchEngine, EngineConfig, EngineRequest, EngineStats, RequestOutcome, TokenScheduler,
};
use std::collections::HashMap;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

/// Post-shutdown page accounting for one rank's pool shard — the
/// "drains exactly empty" obligation, captured after the engine thread
/// exits so tests can assert it without racing the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolDrain {
    /// Pages on the free list.
    pub free_pages: u32,
    /// Total pool capacity in pages (drained ⇒ `free_pages` equals this).
    pub capacity_pages: u32,
    /// Pages still privately owned by sequences (drained ⇒ 0).
    pub private_pages: u32,
    /// Pages still owned by sealed trie blocks (drained ⇒ 0).
    pub shared_block_pages: u32,
    /// Host-tier pages still holding swapped KV (drained ⇒ 0).
    pub host_pages_used: u32,
    /// Device-resident sequences still registered (drained ⇒ 0).
    pub active_seqs: usize,
    /// Host-suspended sequences still registered (drained ⇒ 0).
    pub suspended_seqs: usize,
}

impl PoolDrain {
    fn capture(pool: &PagedKvPool) -> Self {
        let acc = pool.page_accounting();
        Self {
            free_pages: acc.free,
            capacity_pages: pool.capacity_pages(),
            private_pages: acc.private,
            shared_block_pages: acc.shared_blocks,
            host_pages_used: pool.host_pages_used(),
            active_seqs: pool.active_seqs(),
            suspended_seqs: pool.suspended_seqs(),
        }
    }

    /// `true` when the shard is exactly empty: every page back on the
    /// free list, nothing private, no shared blocks, no host residue, no
    /// registered sequences.
    pub fn is_empty(&self) -> bool {
        self.free_pages == self.capacity_pages
            && self.private_pages == 0
            && self.shared_block_pages == 0
            && self.host_pages_used == 0
            && self.active_seqs == 0
            && self.suspended_seqs == 0
    }
}

/// What the engine thread hands back after shutdown.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The engine's aggregate counters for the whole service run.
    pub stats: EngineStats,
    /// Per-rank post-shutdown pool accounting (index = rank).
    pub drain: Vec<PoolDrain>,
    /// Kernel mode the engine ran with.
    pub kernel_mode: KernelMode,
    /// Final service-clock value (total progressed + idle-gap ticks).
    pub clock: u64,
}

impl ServiceReport {
    /// `true` when every rank's shard drained exactly empty.
    pub fn drained_empty(&self) -> bool {
        self.drain.iter().all(PoolDrain::is_empty)
    }
}

/// Client-side face of a running service: submit requests, script
/// open-loop schedules, cancel. Cheap to share across threads by
/// reference (`&ServiceClient` is all [`serve`]'s closure gets) — every
/// method takes `&self`.
pub struct ServiceClient {
    batcher: Arc<Batcher>,
}

impl ServiceClient {
    /// Submits a request for immediate injection (live-service
    /// semantics: it arrives at whatever clock tick the engine thread
    /// next drains the mailbox). Returns the streaming handle.
    pub fn submit(&self, req: EngineRequest) -> SessionHandle {
        self.submit_inner(req, None)
    }

    /// Submits a request with a scheduled arrival tick. The engine
    /// thread holds it until the service clock reaches `arrival` — the
    /// open-loop building block. An `arrival` already in the past is
    /// injected immediately.
    pub fn submit_at(&self, req: EngineRequest, arrival: u64) -> SessionHandle {
        self.submit_inner(req, Some(arrival))
    }

    /// Pushes a whole `(request, arrival)` schedule atomically — one
    /// mailbox lock acquisition, so the engine thread wakes to the
    /// complete schedule and the run is deterministic regardless of how
    /// it interleaves with the push.
    pub fn submit_schedule(
        &self,
        schedule: impl IntoIterator<Item = (EngineRequest, u64)>,
    ) -> Vec<SessionHandle> {
        let mut handles = Vec::new();
        let cmds: Vec<Command> = schedule
            .into_iter()
            .map(|(req, arrival)| {
                let (tx, rx) = sync_channel(req.max_new_tokens + 1);
                handles.push(SessionHandle::new(req.id, rx, self.batcher.clone()));
                Command::Submit(Submission {
                    req,
                    arrival: Some(arrival),
                    tx,
                })
            })
            .collect();
        self.batcher.push_all(cmds);
        handles
    }

    /// Cancels a request as soon as the engine thread sees the command,
    /// wherever it is parked. No-op for unknown or already-terminal ids.
    pub fn cancel(&self, id: u64) {
        self.batcher.cancel(id);
    }

    /// Cancels a request at a scheduled service-clock tick — scripted
    /// cancellation for deterministic tests. A tick already in the past
    /// applies immediately.
    pub fn cancel_at(&self, id: u64, at: u64) {
        self.batcher.push(Command::Cancel { id, at: Some(at) });
    }

    fn submit_inner(&self, req: EngineRequest, arrival: Option<u64>) -> SessionHandle {
        // Bound = every token the request can produce plus the terminal
        // event: engine-thread sends can never block on a slow client.
        let (tx, rx) = sync_channel(req.max_new_tokens + 1);
        let handle = SessionHandle::new(req.id, rx, self.batcher.clone());
        self.batcher
            .push(Command::Submit(Submission { req, arrival, tx }));
        handle
    }
}

/// Runs a service: spawns the engine thread over
/// `BatchEngine::new(model, pool, scheduler, config)`, hands the calling
/// thread a [`ServiceClient`], and on return of `f` shuts down —
/// draining every queued command and finishing (or cancelling, if asked)
/// all in-flight work before the engine thread exits. Returns `f`'s
/// result plus the engine thread's [`ServiceReport`].
///
/// Scoped threads let the engine borrow `&Model` directly — no `Arc`,
/// no `'static` bound on the closure.
pub fn serve<R>(
    model: &Model,
    pool: PagedKvPool,
    scheduler: TokenScheduler,
    config: EngineConfig,
    f: impl FnOnce(&ServiceClient) -> R,
) -> (R, ServiceReport) {
    let batcher = Arc::new(Batcher::new());
    let client = ServiceClient {
        batcher: batcher.clone(),
    };
    std::thread::scope(|scope| {
        let engine_batcher = batcher.clone();
        let engine =
            scope.spawn(move || engine_loop(model, pool, scheduler, config, &engine_batcher));
        let out = f(&client);
        batcher.shutdown();
        let report = engine.join().expect("engine thread panicked");
        (out, report)
    })
}

/// Per-request engine-thread bookkeeping.
struct SessionState {
    tx: std::sync::mpsc::SyncSender<StreamEvent>,
    /// Tokens forwarded so far; the next expected decode index. Restart
    /// re-emissions arrive with `index < delivered` and are dropped.
    delivered: usize,
}

/// The engine thread's side of the tick protocol: session registration
/// on injection, channel delivery on the way out.
#[derive(Default)]
struct ServiceHooks {
    sessions: HashMap<u64, SessionState>,
    finished_seen: usize,
}

impl ClockHooks<Submission> for ServiceHooks {
    fn id_of(&self, sub: &Submission) -> u64 {
        sub.req.id
    }

    fn inject(&mut self, engine: &mut BatchEngine<'_>, sub: Submission) {
        self.sessions.insert(
            sub.req.id,
            SessionState {
                tx: sub.tx,
                delivered: 0,
            },
        );
        engine.submit(sub.req);
    }

    fn cancelled_parked(&mut self, sub: Submission, clock: u64) {
        // Still parked in the batcher schedule: never reaches the engine
        // at all; resolved client-side.
        let _ = sub.tx.send(StreamEvent::Done(SessionEnd {
            outcome: RequestOutcome::Cancelled,
            generated: Vec::new(),
            ttft_iteration: 0,
            preemptions: 0,
            clock,
        }));
    }

    fn deliver(&mut self, engine: &mut BatchEngine<'_>, clock: u64) {
        // This step's tokens, deduped by decode index.
        for ev in engine.take_token_events() {
            if let Some(s) = self.sessions.get_mut(&ev.id) {
                if ev.index == s.delivered {
                    s.delivered += 1;
                    let _ = s.tx.send(StreamEvent::Token(StreamToken {
                        index: ev.index,
                        token: ev.token,
                        clock,
                    }));
                }
            }
        }
        // Terminals (a cancel may have retired requests even when the
        // step itself was a no-op).
        for fr in &engine.finished()[self.finished_seen..] {
            if let Some(s) = self.sessions.remove(&fr.id) {
                let _ = s.tx.send(StreamEvent::Done(SessionEnd {
                    outcome: fr.outcome,
                    generated: fr.generated.clone(),
                    ttft_iteration: fr.ttft_iteration,
                    preemptions: fr.preemptions,
                    clock,
                }));
            }
        }
        self.finished_seen = engine.finished().len();
    }
}

fn engine_loop(
    model: &Model,
    pool: PagedKvPool,
    scheduler: TokenScheduler,
    config: EngineConfig,
    batcher: &Batcher,
) -> ServiceReport {
    let mut engine = BatchEngine::new(model, pool, scheduler, config);
    let mut clock: u64 = 0;
    let mut queue: ArrivalQueue<Submission> = ArrivalQueue::new();
    let mut hooks = ServiceHooks::default();
    let mut shutdown = false;

    loop {
        let engine_idle =
            engine.active_len() == 0 && engine.queue_len() == 0 && engine.resume_len() == 0;
        let idle = engine_idle && !queue.has_pending();
        // Only a fully idle engine blocks — the clock is frozen in
        // `wait`, so live idle gaps never inflate latency numbers.
        let (cmds, sd) = if idle && !shutdown {
            batcher.wait()
        } else {
            batcher.drain()
        };
        shutdown |= sd;
        for cmd in cmds {
            match cmd {
                Command::Submit(sub) => {
                    // Live submissions arrive "now"; scheduled ones in the
                    // past are clamped to now.
                    let arrival = sub.arrival.unwrap_or(clock).max(clock);
                    queue.schedule(arrival, sub);
                }
                Command::Cancel { id, at } => {
                    queue.schedule_cancel(at.unwrap_or(clock).max(clock), id);
                }
            }
        }
        if engine_idle && !queue.has_pending() {
            // Nothing a cancel could still target; drop strays so they
            // cannot wedge the shutdown test below.
            queue.clear_cancels();
            if shutdown {
                break;
            }
            // Woken with only no-op commands (e.g. a cancel for a
            // retired id): back to sleep without touching the clock.
            continue;
        }

        clock_tick(&mut engine, &mut clock, &mut queue, &mut hooks);
    }

    debug_assert!(
        hooks.sessions.is_empty(),
        "all sessions reach a terminal state"
    );
    ServiceReport {
        stats: engine.stats().clone(),
        drain: engine.rank_pools().iter().map(PoolDrain::capture).collect(),
        kernel_mode: engine.kernel_mode(),
        clock,
    }
}

//! Property tests for the performance model: monotonicity and conservation
//! laws that must hold for any workload.

use oaken_accel::{AcceleratorSpec, QuantPolicy, SystemModel, Workload};
use oaken_model::ModelConfig;
use proptest::prelude::*;

fn any_system() -> impl Strategy<Value = SystemModel> {
    prop::sample::select(vec![
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16()),
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::qserve()),
        SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()),
        SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16()),
        SystemModel::new(AcceleratorSpec::tender(), QuantPolicy::tender()),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Iteration latency grows (weakly) with context length.
    #[test]
    fn iteration_monotone_in_context(sys in any_system(), batch in 1usize..128) {
        let m = ModelConfig::llama2_7b();
        let short = sys.generation_iteration(&m, batch, 256).total();
        let long = sys.generation_iteration(&m, batch, 4096).total();
        prop_assert!(long >= short, "{}: {short} -> {long}", sys.name());
    }

    /// Iteration latency grows (weakly) with batch size.
    #[test]
    fn iteration_monotone_in_batch(sys in any_system(), ctx in 128usize..4096) {
        let m = ModelConfig::llama2_7b();
        let small = sys.generation_iteration(&m, 4, ctx).total();
        let large = sys.generation_iteration(&m, 64, ctx).total();
        prop_assert!(large >= small, "{}", sys.name());
    }

    /// The breakdown components are non-negative and sum to the total.
    #[test]
    fn breakdown_is_consistent(sys in any_system(), batch in 1usize..256, ctx in 64usize..4096) {
        let m = ModelConfig::llama2_13b();
        let it = sys.generation_iteration(&m, batch, ctx);
        prop_assert!(it.non_attention >= 0.0);
        prop_assert!(it.attention >= 0.0);
        prop_assert!(it.quant_exposed >= 0.0 && it.quant_exposed <= it.quant_raw + 1e-12);
        prop_assert!(it.dequant_exposed >= 0.0);
        let sum = it.non_attention + it.attention + it.quant_exposed + it.dequant_exposed;
        prop_assert!((sum - it.total()).abs() < 1e-12);
    }

    /// Throughput never exceeds the physics bound of one token per
    /// iteration per request.
    #[test]
    fn throughput_bounded_by_iteration_floor(sys in any_system(), batch in 1usize..64) {
        let m = ModelConfig::llama2_7b();
        let w = Workload { batch, input_len: 256, output_len: 256 };
        let r = sys.run(&m, &w);
        if !r.oom {
            let floor = sys.generation_iteration(&m, r.effective_batch, w.input_len).total();
            let bound = r.effective_batch as f64 / floor;
            prop_assert!(
                r.throughput <= bound * 1.001,
                "{}: {} > {}",
                sys.name(), r.throughput, bound
            );
        }
    }

    /// Capacity accounting is monotone: more requests or longer sequences
    /// never need less memory.
    #[test]
    fn memory_required_monotone(
        sys in any_system(),
        batch in 1usize..128,
        seq in 128usize..4096,
    ) {
        let m = ModelConfig::llama2_13b();
        let base = sys.memory_required(&m, batch, seq);
        prop_assert!(sys.memory_required(&m, batch + 1, seq) >= base);
        prop_assert!(sys.memory_required(&m, batch, seq + 128) >= base);
    }

    /// Quantized policies always admit at least as many requests as FP16.
    #[test]
    fn quantization_never_shrinks_admission(seq in 256usize..8192) {
        let m = ModelConfig::llama2_13b();
        let fp16 = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::fp16());
        let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        prop_assert!(
            oaken.max_concurrent_batch(&m, seq) >= fp16.max_concurrent_batch(&m, seq)
        );
    }
}

//! Energy-efficiency extension of the §6.2 power analysis: joules per
//! generated token for each system, combining the power model with the
//! performance model.
//!
//! The paper reports the Oaken accelerator at 222.7 W — 44.3% below the
//! A100's 400 W TDP — while also delivering higher throughput; this module
//! composes the two into tokens/joule, the metric a deployment actually
//! pays for.

use crate::area::{AreaModel, PowerModel};
use crate::system::{RunResult, SystemModel, Workload};
use oaken_model::ModelConfig;

/// Energy summary of one simulated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// System name.
    pub system: String,
    /// Board power used for the estimate, in watts.
    pub power_w: f64,
    /// Output tokens per joule.
    pub tokens_per_joule: f64,
    /// Total energy for the workload, in joules.
    pub total_joules: f64,
}

/// Nominal board power for a system: the A100's TDP for GPU platforms, the
/// calibrated accelerator power for NPU platforms.
pub fn nominal_power_w(sys: &SystemModel) -> f64 {
    match sys.accel.kind {
        crate::spec::PlatformKind::Gpu => 400.0,
        crate::spec::PlatformKind::Npu => {
            let area = AreaModel::tsmc28();
            PowerModel::oaken_lpddr().total_w(sys.accel.num_cores, area.core_mm2())
        }
    }
}

/// Runs a workload and converts the result to energy terms.
pub fn energy_report(sys: &SystemModel, model: &ModelConfig, w: &Workload) -> EnergyReport {
    let run: RunResult = sys.run(model, w);
    let power = nominal_power_w(sys);
    let tokens = (w.batch * w.output_len) as f64;
    let joules = power * run.total_time;
    EnergyReport {
        system: sys.name(),
        power_w: power,
        tokens_per_joule: if run.oom || joules == 0.0 {
            0.0
        } else {
            tokens / joules
        },
        total_joules: joules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::QuantPolicy;
    use crate::spec::AcceleratorSpec;

    #[test]
    fn oaken_more_efficient_than_a100_vllm() {
        let m = ModelConfig::llama2_13b();
        let w = Workload::one_k_one_k(128);
        let oaken = energy_report(
            &SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()),
            &m,
            &w,
        );
        let vllm = energy_report(
            &SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16()),
            &m,
            &w,
        );
        assert!(oaken.power_w < vllm.power_w, "lower power");
        assert!(
            oaken.tokens_per_joule > vllm.tokens_per_joule * 1.5,
            "oaken {} vs vllm {} tokens/J",
            oaken.tokens_per_joule,
            vllm.tokens_per_joule
        );
    }

    #[test]
    fn oom_reports_zero_efficiency() {
        let m = ModelConfig::llama2_70b();
        let w = Workload::one_k_one_k(16);
        let r = energy_report(
            &SystemModel::new(AcceleratorSpec::oaken_hbm(), QuantPolicy::oaken()),
            &m,
            &w,
        );
        assert_eq!(r.tokens_per_joule, 0.0);
    }

    #[test]
    fn npu_power_matches_table4_calibration() {
        let sys = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let p = nominal_power_w(&sys);
        assert!((200.0..245.0).contains(&p), "{p} W");
    }
}

//! Per-operation core-utilization probe for the generation phase —
//! the Figure 3(c) experiment showing that multi-head attention is the
//! utilization sink during batched generation.

use crate::policy::QuantPolicy;
use crate::spec::AcceleratorSpec;
use crate::system::SystemModel;
use oaken_model::ModelConfig;

/// The operation segments of one decoder layer plus the LM head, in the
/// order Figure 3(c) plots them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSegment {
    /// Input layer norm (vector op).
    InputLayerNorm,
    /// QKV generation (batched GEMM).
    QkvGen,
    /// Multi-head attention over the KV cache (un-batchable).
    Mha,
    /// Post-attention layer norm (vector op).
    PostLayerNorm,
    /// Feed-forward network (batched GEMM).
    Ffn,
}

impl OpSegment {
    /// All segments in plot order.
    pub const ALL: [OpSegment; 5] = [
        OpSegment::InputLayerNorm,
        OpSegment::QkvGen,
        OpSegment::Mha,
        OpSegment::PostLayerNorm,
        OpSegment::Ffn,
    ];

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            OpSegment::InputLayerNorm => "InputLN",
            OpSegment::QkvGen => "QKVGen",
            OpSegment::Mha => "MHA",
            OpSegment::PostLayerNorm => "PostLN",
            OpSegment::Ffn => "FFN",
        }
    }
}

/// Utilization (%) per op segment during batched generation.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// `(segment, utilization_percent)` in plot order.
    pub segments: Vec<(OpSegment, f64)>,
}

impl UtilizationReport {
    /// Utilization of one segment.
    pub fn get(&self, seg: OpSegment) -> f64 {
        self.segments
            .iter()
            .find(|(s, _)| *s == seg)
            .map(|(_, u)| *u)
            .expect("all segments present")
    }
}

/// Measures per-segment utilization for one generation iteration:
/// `achieved FLOPs / (segment time × peak FLOPs)`.
pub fn generation_utilization(
    accel: &AcceleratorSpec,
    model: &ModelConfig,
    batch: usize,
    ctx: usize,
) -> UtilizationReport {
    let sys = SystemModel::new(accel.clone(), QuantPolicy::fp16());
    let b = batch as f64;
    let d = model.d_model as f64;
    let kv_dim = model.kv_dim() as f64;
    let layers = model.num_layers as f64;
    let span = model.attention_span(ctx) as f64;
    let bw = accel.mem.bandwidth;
    let peak = accel.peak_flops;
    let weight_bits = 16.0;

    // Vector ops: limited by activation streaming through the vector units,
    // a tiny fraction of peak (the LN bars of Figure 3c).
    let ln_flops = b * layers * 4.0 * d;
    let ln_time = ln_flops / (peak * 0.02);
    let ln_util = 100.0 * ln_flops / (ln_time * peak);

    // QKV generation: batched GEMM streaming Wq/Wk/Wv.
    let qkv_bytes = layers * (d * d + 2.0 * d * kv_dim) * weight_bits / 8.0;
    let qkv_flops = b * layers * 2.0 * (d * d + 2.0 * d * kv_dim);
    let qkv_time = (qkv_bytes / bw).max(qkv_flops / (peak * accel.gemm_efficiency_at(batch)));
    let qkv_util = 100.0 * qkv_flops / (qkv_time * peak);

    // MHA: bandwidth-bound KV streaming.
    let it = sys.generation_iteration(model, batch, ctx);
    let mha_flops = b * layers * 4.0 * span * d;
    let mha_util = 100.0 * mha_flops / (it.attention * peak);

    // FFN (+ projection): the heaviest batched GEMM.
    let ffn_mats = if model.gated_ffn() { 3.0 } else { 2.0 };
    let active = model.moe.map_or(1.0, |m| m.top_k as f64);
    let experts_stored = model.moe.map_or(1.0, |m| m.num_experts as f64);
    let ffn_bytes =
        layers * (d * d + experts_stored * ffn_mats * d * model.ffn_hidden as f64) * weight_bits
            / 8.0;
    let ffn_flops =
        b * layers * (2.0 * d * d + active * ffn_mats * 2.0 * d * model.ffn_hidden as f64);
    let ffn_time = (ffn_bytes / bw).max(ffn_flops / (peak * accel.gemm_efficiency_at(batch)));
    let ffn_util = 100.0 * ffn_flops / (ffn_time * peak);

    UtilizationReport {
        segments: vec![
            (OpSegment::InputLayerNorm, ln_util),
            (OpSegment::QkvGen, qkv_util),
            (OpSegment::Mha, mha_util),
            (OpSegment::PostLayerNorm, ln_util),
            (OpSegment::Ffn, ffn_util),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mha_is_the_utilization_sink() {
        // Figure 3(c): underutilization primarily arises from MHA.
        let r = generation_utilization(
            &AcceleratorSpec::a100(),
            &ModelConfig::llama2_13b(),
            32,
            1536,
        );
        let mha = r.get(OpSegment::Mha);
        let ffn = r.get(OpSegment::Ffn);
        let qkv = r.get(OpSegment::QkvGen);
        assert!(mha < ffn, "MHA {mha}% vs FFN {ffn}%");
        assert!(mha < qkv, "MHA {mha}% vs QKV {qkv}%");
        assert!(mha < 25.0, "MHA should be badly underutilized: {mha}%");
    }

    #[test]
    fn utilizations_are_percentages() {
        let r = generation_utilization(
            &AcceleratorSpec::a100(),
            &ModelConfig::llama2_13b(),
            32,
            1536,
        );
        for (seg, u) in &r.segments {
            assert!((0.0..=100.0).contains(u), "{}: {u}%", seg.label());
        }
    }

    #[test]
    fn larger_batch_raises_gemm_utilization() {
        let m = ModelConfig::llama2_13b();
        let a = AcceleratorSpec::a100();
        let small = generation_utilization(&a, &m, 4, 1536).get(OpSegment::Ffn);
        let large = generation_utilization(&a, &m, 128, 1536).get(OpSegment::Ffn);
        assert!(
            large > small,
            "batch should lift FFN util: {small} → {large}"
        );
    }
}

//! The end-to-end system model: prefill + generation latency, capacity
//! admission, and quantization overheads for one (accelerator, policy)
//! pair running one model — the machinery behind Figures 4, 5, 11, 12(b),
//! 13, and 14.

use crate::policy::QuantPolicy;
use crate::spec::{AcceleratorSpec, PlatformKind};
use oaken_model::ModelConfig;

/// A batched serving workload with fixed input/output lengths
/// (Figure 11 uses 1K:1K; Figure 13 sweeps total length at 1:1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Concurrent requests.
    pub batch: usize,
    /// Input (prompt) tokens per request.
    pub input_len: usize,
    /// Output (generated) tokens per request.
    pub output_len: usize,
}

impl Workload {
    /// The paper's main configuration: 1K input, 1K output.
    pub fn one_k_one_k(batch: usize) -> Self {
        Self {
            batch,
            input_len: 1024,
            output_len: 1024,
        }
    }
}

/// What happens when a workload exceeds device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityPolicy {
    /// Run the batch in sequential waves of the largest batch that fits
    /// (serving systems with paged KV allocators: vLLM and the GPU
    /// baselines) — produces the Figure 11 saturation shape.
    #[default]
    Waves,
    /// Refuse to run (fixed-allocation NPUs in Figures 4/11: the missing
    /// bars / OOM annotations).
    Fail,
}

/// Latency breakdown of one generation iteration (one output token per
/// request across the batch), in seconds.
///
/// `quant_raw`/`dequant_raw` are the engine-level times of the
/// (de)quantization work; `quant_exposed`/`dequant_exposed` are the parts
/// that actually extend the critical path (zero when the dedicated engines
/// hide them behind DMA and attention per §5.3, large on GPUs per
/// Figure 12b).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterationBreakdown {
    /// Batchable segments: QKV generation, projection, FFN, norms, LM head.
    pub non_attention: f64,
    /// Un-batchable attention over the cached KV.
    pub attention: f64,
    /// Raw quantization-engine time (write path).
    pub quant_raw: f64,
    /// Raw dequantization-engine time (read path).
    pub dequant_raw: f64,
    /// Quantization time on the critical path.
    pub quant_exposed: f64,
    /// Dequantization time on the critical path.
    pub dequant_exposed: f64,
}

impl IterationBreakdown {
    /// Critical-path iteration time.
    pub fn total(&self) -> f64 {
        self.non_attention + self.attention + self.quant_exposed + self.dequant_exposed
    }

    /// Element-wise accumulation (for summing over a run).
    pub fn accumulate(&mut self, other: &IterationBreakdown) {
        self.non_attention += other.non_attention;
        self.attention += other.attention;
        self.quant_raw += other.quant_raw;
        self.dequant_raw += other.dequant_raw;
        self.quant_exposed += other.quant_exposed;
        self.dequant_exposed += other.dequant_exposed;
    }
}

/// Result of simulating a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// `"<accelerator>/<policy>"`.
    pub system: String,
    /// Output tokens per second (the paper's throughput metric).
    pub throughput: f64,
    /// End-to-end seconds for the whole workload.
    pub total_time: f64,
    /// Seconds spent in prefill.
    pub prefill_time: f64,
    /// Accumulated generation breakdown.
    pub breakdown: IterationBreakdown,
    /// Whether the workload could not run at all (capacity, `Fail` policy).
    pub oom: bool,
    /// Concurrent batch actually used per wave.
    pub effective_batch: usize,
    /// Number of sequential waves.
    pub waves: usize,
}

/// An accelerator running a quantization policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemModel {
    /// Hardware platform.
    pub accel: AcceleratorSpec,
    /// Quantization policy.
    pub policy: QuantPolicy,
    /// Over-capacity behaviour.
    pub capacity: CapacityPolicy,
}

impl SystemModel {
    /// Creates a system with the default `Waves` capacity policy: serving
    /// systems with paged/dynamic KV allocation (vLLM's PagedAttention, the
    /// GPU baselines, and Oaken's own page-based MMU §5.2) admit the
    /// largest batch that fits and saturate beyond it. Use
    /// [`SystemModel::with_capacity`] with [`CapacityPolicy::Fail`] for
    /// fixed-allocation platforms (the Figure 4 motivation study).
    pub fn new(accel: AcceleratorSpec, policy: QuantPolicy) -> Self {
        Self {
            accel,
            policy,
            capacity: CapacityPolicy::Waves,
        }
    }

    /// Overrides the capacity policy.
    pub fn with_capacity(mut self, capacity: CapacityPolicy) -> Self {
        self.capacity = capacity;
        self
    }

    /// Display name.
    pub fn name(&self) -> String {
        format!("{}/{}", self.accel.name, self.policy.name)
    }

    /// Non-KV device bytes this system pins: weights at the policy's
    /// storage precision plus ~2% scratch for activations and collectives.
    ///
    /// Single source for the reserved-memory term of both
    /// [`SystemModel::memory_required`] and
    /// [`SystemModel::max_concurrent_batch`].
    pub fn reserved_bytes(&self, model: &ModelConfig) -> u64 {
        let weights = model.weight_bytes(self.policy.weight_bits);
        weights + weights / 50
    }

    /// KV-cache bytes one request of `seq_len` tokens stores under this
    /// system's policy.
    ///
    /// Routed through [`ModelConfig::kv_bytes_per_token`] — the same
    /// bytes-per-token helper `oaken-model`'s `PagedKvPool` admission uses
    /// — so the analytic capacity model and the executed paged pool cannot
    /// drift apart (the pool additionally pays page rounding, which this
    /// analytic figure deliberately ignores).
    pub fn kv_bytes_per_request(&self, model: &ModelConfig, seq_len: usize) -> u64 {
        seq_len as u64 * model.kv_bytes_per_token(self.policy.kv_bits)
    }

    /// Device bytes needed for `batch` requests of `seq_len` total tokens.
    pub fn memory_required(&self, model: &ModelConfig, batch: usize, seq_len: usize) -> u64 {
        self.reserved_bytes(model) + batch as u64 * self.kv_bytes_per_request(model, seq_len)
    }

    /// Largest concurrent batch that fits for `seq_len`-token requests.
    pub fn max_concurrent_batch(&self, model: &ModelConfig, seq_len: usize) -> usize {
        let budget = self
            .accel
            .mem
            .capacity
            .saturating_sub(self.reserved_bytes(model));
        let per_req = self.kv_bytes_per_request(model, seq_len);
        if per_req == 0 {
            return usize::MAX;
        }
        (budget / per_req) as usize
    }

    /// Latency of one generation iteration at context length `ctx`.
    pub fn generation_iteration(
        &self,
        model: &ModelConfig,
        batch: usize,
        ctx: usize,
    ) -> IterationBreakdown {
        let b = batch as f64;
        let bw = self.accel.mem.bandwidth;
        let peak = self.accel.peak_flops;
        let layers = model.num_layers as f64;
        let kv_dim = model.kv_dim() as f64;
        let d = model.d_model as f64;
        let span = model.attention_span(ctx) as f64;

        // --- non-attention: batchable, weights stream once per iteration.
        let weight_bytes = model.weight_bytes(self.policy.weight_bits) as f64;
        let ffn_mats = if model.gated_ffn() { 3.0 } else { 2.0 };
        let active_experts = model.moe.map_or(1.0, |m| m.top_k as f64);
        let nonattn_flops_per_tok = layers
            * (2.0 * (2.0 * d * d + 2.0 * d * kv_dim)
                + active_experts * ffn_mats * 2.0 * d * model.ffn_hidden as f64)
            + 2.0 * d * model.vocab_size as f64;
        let t_weights = weight_bytes / bw;
        let t_compute = b * nonattn_flops_per_tok / (peak * self.accel.gemm_efficiency_at(batch));
        let non_attention = t_weights.max(t_compute);

        // --- attention: per-request KV reads dominate (§3.1).
        let kv_bytes_tok = model.kv_bytes_per_token(self.policy.kv_bits) as f64;
        let read_bytes = b * span * kv_bytes_tok;
        let write_bytes = b * kv_bytes_tok;
        let attn_flops = b * layers * 4.0 * span * d;
        let t_attn_mem = (read_bytes + write_bytes) / (bw * self.policy.kv_read_efficiency);
        let t_attn_comp = attn_flops / (peak * self.accel.vector_efficiency);
        let attention = t_attn_mem.max(t_attn_comp);

        // --- (de)quantization work.
        let elems_read = b * span * 2.0 * layers * kv_dim;
        let elems_written = b * 2.0 * layers * kv_dim;
        let vectors_written = b * 2.0 * layers;
        let cost = &self.policy.cost;
        let quant_ops = vectors_written * cost.quant_ops(model.kv_dim());
        let mut dequant_ops = elems_read * cost.dequant_flops_per_elem;
        if cost.channel_reorder {
            dequant_ops += elems_read;
        }
        let is_quantized = self.policy.kv_bits < 16.0;
        let (quant_raw, dequant_raw, quant_exposed, dequant_exposed) = if !is_quantized {
            (0.0, 0.0, 0.0, 0.0)
        } else if self.policy.dedicated_engine && self.accel.kind == PlatformKind::Npu {
            // Streaming engines in the DMA path: dequant unpacks ~4 packed
            // elements per lane-cycle; quant needs a stats pass + encode.
            let rate = self.accel.engine_elems_per_s();
            let dq = elems_read / (rate * 4.0);
            let q = elems_written * 2.0 / rate
                + vectors_written * 64.0 / (self.accel.num_cores as f64 * self.accel.freq);
            // Overlapped with DMA/attention of other requests (§5.3); a
            // small pipeline-fill fraction stays exposed.
            let exposed_frac = 0.10;
            (q, dq, q * exposed_frac, dq * exposed_frac)
        } else {
            // Compute-core kernels (GPU or non-engine ASIC): divergence
            // penalty applies and nothing overlaps.
            let denom = peak * self.accel.vector_efficiency;
            let pen = cost.gpu_divergence_penalty;
            let q = quant_ops * pen / denom;
            let dq = dequant_ops * pen / denom;
            (q, dq, q, dq)
        };

        IterationBreakdown {
            non_attention,
            attention,
            quant_raw,
            dequant_raw,
            quant_exposed,
            dequant_exposed,
        }
    }

    /// Prefill latency for `batch` prompts of `input_len` tokens
    /// (compute-bound, Figure 3).
    pub fn prefill_time(&self, model: &ModelConfig, batch: usize, input_len: usize) -> f64 {
        let b = batch as f64;
        let l = input_len as f64;
        let d = model.d_model as f64;
        let params = model.param_count() as f64;
        let proj_flops = 2.0 * params * b * l;
        let attn_flops =
            b * model.num_layers as f64 * 2.0 * l * model.attention_span(input_len) as f64 * d;
        let t_compute =
            (proj_flops + attn_flops) / (self.accel.peak_flops * self.accel.matmul_efficiency);
        let weight_bytes = model.weight_bytes(self.policy.weight_bits) as f64;
        let kv_write = b * l * model.kv_bytes_per_token(self.policy.kv_bits) as f64;
        let t_mem = (weight_bytes + kv_write) / self.accel.mem.bandwidth;
        t_compute.max(t_mem)
    }

    /// Simulates a full workload.
    ///
    /// Over-capacity batches run at the largest concurrent batch that fits,
    /// with the remaining requests filling in continuously — modelled as a
    /// *fractional* number of waves so throughput saturates smoothly, the
    /// way continuous-batching schedulers behave.
    pub fn run(&self, model: &ModelConfig, w: &Workload) -> RunResult {
        let seq = w.input_len + w.output_len;
        let fits = self.max_concurrent_batch(model, seq);
        let (effective_batch, wave_factor, oom) = if fits >= w.batch {
            (w.batch, 1.0f64, false)
        } else {
            match self.capacity {
                CapacityPolicy::Fail => (w.batch, 1.0, true),
                CapacityPolicy::Waves => {
                    if fits == 0 {
                        (w.batch, 1.0, true) // weights alone do not fit
                    } else {
                        (fits, w.batch as f64 / fits as f64, false)
                    }
                }
            }
        };
        let waves = wave_factor.ceil() as usize;
        if oom {
            return RunResult {
                system: self.name(),
                throughput: 0.0,
                total_time: f64::INFINITY,
                prefill_time: f64::INFINITY,
                breakdown: IterationBreakdown::default(),
                oom: true,
                effective_batch,
                waves,
            };
        }

        let prefill = self.prefill_time(model, effective_batch, w.input_len);
        let mut breakdown = IterationBreakdown::default();
        // Sample the context sweep at up to 64 points and integrate; the
        // iteration model is smooth in ctx so this is accurate and fast.
        let samples = w.output_len.clamp(1, 64);
        let step = w.output_len as f64 / samples as f64;
        for i in 0..samples {
            let ctx = w.input_len + ((i as f64 + 0.5) * step) as usize;
            let it = self.generation_iteration(model, effective_batch, ctx);
            let scaled = IterationBreakdown {
                non_attention: it.non_attention * step,
                attention: it.attention * step,
                quant_raw: it.quant_raw * step,
                dequant_raw: it.dequant_raw * step,
                quant_exposed: it.quant_exposed * step,
                dequant_exposed: it.dequant_exposed * step,
            };
            breakdown.accumulate(&scaled);
        }
        // Serving-stack overhead (kernel launches, host scheduling) is a
        // per-token tax: it stretches the generation loop, while prefill is
        // one large fused kernel and runs at the roofline.
        let wave_time = prefill + breakdown.total() / self.accel.framework_efficiency;
        let total_time = wave_time * wave_factor;
        RunResult {
            system: self.name(),
            throughput: (w.batch * w.output_len) as f64 / total_time,
            total_time,
            prefill_time: prefill * wave_factor,
            breakdown,
            oom: false,
            effective_batch,
            waves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AcceleratorSpec;

    fn llama13b() -> ModelConfig {
        ModelConfig::llama2_13b()
    }

    #[test]
    fn attention_dominates_large_batch_fp16() {
        let sys = SystemModel::new(AcceleratorSpec::a100_x2(), QuantPolicy::fp16());
        let it = sys.generation_iteration(&llama13b(), 256, 1536);
        assert!(
            it.attention > it.non_attention,
            "attention {} vs non-attn {}",
            it.attention,
            it.non_attention
        );
    }

    #[test]
    fn kv_quantization_cuts_attention_time() {
        let m = llama13b();
        let fp16 = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::fp16());
        let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let a = fp16.generation_iteration(&m, 128, 1536).attention;
        let b = oaken.generation_iteration(&m, 128, 1536).attention;
        let ratio = a / b;
        // 16/4.8 ≈ 3.3× less KV traffic, boosted slightly by the MMU's
        // higher sustained read efficiency; capped by the compute floor.
        assert!((1.8..4.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn oaken_engines_hide_quant_gpu_does_not() {
        let m = llama13b();
        let asic = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let gpu = SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::oaken_gpu());
        let ia = asic.generation_iteration(&m, 64, 1536);
        let ig = gpu.generation_iteration(&m, 64, 1536);
        let asic_frac = (ia.quant_exposed + ia.dequant_exposed) / ia.total();
        let gpu_frac = (ig.quant_exposed + ig.dequant_exposed) / ig.total();
        assert!(asic_frac < 0.06, "ASIC exposes {asic_frac}");
        assert!(gpu_frac > 0.10, "GPU exposes {gpu_frac}");
    }

    #[test]
    fn oaken_lpddr_beats_vllm_at_batch_256() {
        // The headline claim: ~1.79× over vLLM at batch 256 (1K:1K).
        let m = llama13b();
        let w = Workload::one_k_one_k(256);
        let vllm = SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16()).run(&m, &w);
        let oaken =
            SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()).run(&m, &w);
        assert!(!oaken.oom, "Oaken-LPDDR must fit batch 256: {oaken:?}");
        let speedup = oaken.throughput / vllm.throughput;
        assert!(
            (1.2..3.5).contains(&speedup),
            "speedup {speedup} (oaken {} vs vllm {})",
            oaken.throughput,
            vllm.throughput
        );
    }

    #[test]
    fn a100_waves_at_large_batch() {
        let m = llama13b();
        let w = Workload::one_k_one_k(256);
        let vllm = SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16()).run(&m, &w);
        assert!(!vllm.oom);
        assert!(vllm.waves > 1, "26 GB of weights + 256×2K×800KB ≫ 80 GB");
        assert!(vllm.effective_batch < 256);
    }

    #[test]
    fn npu_fails_when_over_capacity() {
        let m = ModelConfig::opt_30b();
        let w = Workload {
            batch: 16,
            input_len: 1024,
            output_len: 1024,
        };
        let hbm_npu = SystemModel::new(AcceleratorSpec::hbm_npu(), QuantPolicy::fp16())
            .with_capacity(CapacityPolicy::Fail)
            .run(&m, &w);
        assert!(
            hbm_npu.oom,
            "OPT-30B at batch 16 must OOM on 80 GB (Fig. 4b)"
        );
        let lpddr_npu = SystemModel::new(AcceleratorSpec::lpddr_npu(), QuantPolicy::fp16())
            .with_capacity(CapacityPolicy::Fail)
            .run(&m, &w);
        assert!(!lpddr_npu.oom, "256 GB fits");
        assert!(lpddr_npu.throughput > 0.0);
    }

    #[test]
    fn weight_only_quant_barely_helps_large_batch() {
        // Figure 5(b): weight-only INT4 ≪ KV INT4 at large batch.
        let m = llama13b();
        let w = Workload::one_k_one_k(128);
        let base = SystemModel::new(AcceleratorSpec::lpddr_npu(), QuantPolicy::fp16()).run(&m, &w);
        let wq = SystemModel::new(
            AcceleratorSpec::lpddr_npu(),
            QuantPolicy::weight_only_int4(),
        )
        .run(&m, &w);
        let kvq = SystemModel::new(AcceleratorSpec::lpddr_npu(), QuantPolicy::kv_int4_plain())
            .run(&m, &w);
        let weight_gain = wq.throughput / base.throughput;
        let kv_gain = kvq.throughput / base.throughput;
        assert!(
            kv_gain > weight_gain,
            "kv {kv_gain} vs weight {weight_gain}"
        );
        assert!(kv_gain > 1.5, "kv quant should matter: {kv_gain}");
    }

    #[test]
    fn throughput_grows_with_batch_until_saturation() {
        let m = llama13b();
        let sys = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let t16 = sys.run(&m, &Workload::one_k_one_k(16)).throughput;
        let t64 = sys.run(&m, &Workload::one_k_one_k(64)).throughput;
        let t256 = sys.run(&m, &Workload::one_k_one_k(256)).throughput;
        assert!(t64 > t16);
        assert!(t256 > t64);
        // Sub-linear: 16× batch gives far less than 16× throughput.
        assert!(t256 / t16 < 16.0);
    }

    #[test]
    fn prefill_is_compute_bound() {
        let m = llama13b();
        let sys = SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16());
        // Doubling the batch roughly doubles prefill time once saturated.
        let t1 = sys.prefill_time(&m, 32, 1024);
        let t2 = sys.prefill_time(&m, 64, 1024);
        let ratio = t2 / t1;
        assert!((1.7..2.3).contains(&ratio), "{ratio}");
    }

    #[test]
    fn memory_accounting_includes_weights_and_kv() {
        let m = llama13b();
        let sys = SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16());
        let req = sys.memory_required(&m, 8, 2048);
        let weights = m.weight_bytes(16.0);
        assert!(req > weights);
        assert!(req > 8 * 2048 * m.kv_bytes_per_token(16.0));
    }
}

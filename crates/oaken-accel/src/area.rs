//! Component-level area and power model calibrated to the paper's TSMC
//! 28 nm Synopsys DC synthesis (Table 4) and the power comparison of §6.2.
//!
//! The model composes each block from primitive costs (FP16 MACs, vector
//! ALUs, comparators, shifters, SRAM) so ablations — e.g. "what if the
//! dequantization engine had twice the lanes?" — remain meaningful, while
//! the default configuration reproduces the paper's numbers:
//!
//! | Module | Paper (mm²) | Ratio |
//! |---|---|---|
//! | Matrix processing unit | 0.908 | 22.86% |
//! | Vector processing unit | 0.239 | 6.03% |
//! | Quantization engine | 0.074 | 1.86% |
//! | Dequantization engine | 0.252 | 6.35% |
//! | Compute core (total) | 3.971 | 100% |

use serde::{Deserialize, Serialize};

/// Primitive standard-cell area costs at TSMC 28 nm, in mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One FP16 multiply-accumulate (pipelined).
    pub fp16_mac: f64,
    /// One FP16 vector ALU lane (add/mul/special functions).
    pub fp16_alu: f64,
    /// One FP16 multiplier (scale application).
    pub fp16_mul: f64,
    /// One FP16 adder/subtractor.
    pub fp16_add: f64,
    /// One FP16 comparator (threshold checks, min/max trees).
    pub comparator: f64,
    /// SRAM density per KiB (single-port).
    pub sram_per_kib: f64,
    /// Zero-remove / zero-insert shifter network per lane.
    pub shifter_lane: f64,
    /// MPU systolic dimension (32×32 in the paper).
    pub mpu_dim: usize,
    /// Vector lanes (32 in the paper).
    pub lanes: usize,
}

impl AreaModel {
    /// Calibrated 28 nm constants.
    pub fn tsmc28() -> Self {
        Self {
            fp16_mac: 680e-6,
            fp16_alu: 3_000e-6,
            fp16_mul: 1_200e-6,
            fp16_add: 450e-6,
            comparator: 130e-6,
            sram_per_kib: 6.5e-3,
            shifter_lane: 600e-6,
            mpu_dim: 32,
            lanes: 32,
        }
    }

    /// Matrix processing unit: `mpu_dim²` MACs + weight-stream buffer +
    /// accumulation/control.
    pub fn mpu_mm2(&self) -> f64 {
        let macs = (self.mpu_dim * self.mpu_dim) as f64 * self.fp16_mac;
        let weight_buffer = 16.0 * self.sram_per_kib;
        let control = 0.12 * macs;
        macs + weight_buffer + control
    }

    /// Vector processing unit: `lanes` ALUs + vector register file.
    pub fn vpu_mm2(&self) -> f64 {
        let alus = self.lanes as f64 * self.fp16_alu;
        let vregs = 20.0 * self.sram_per_kib;
        let control = 0.10 * alus;
        alus + vregs + control
    }

    /// Quantization engine (Figure 9a): per lane a decomposer (2 threshold
    /// comparators + shift subtractor), min/max finder compare pair, and a
    /// σ-multiply quantizer; plus the zero-remove shifter and a small
    /// outlier index buffer.
    pub fn quant_engine_mm2(&self) -> f64 {
        let per_lane =
            2.0 * self.comparator + self.fp16_add + 2.0 * self.comparator + self.fp16_mul;
        let lanes = self.lanes as f64 * per_lane;
        let zero_remove = 0.25 * self.lanes as f64 * self.shifter_lane;
        let index_buffer = 0.5 * self.sram_per_kib;
        lanes + zero_remove + index_buffer
    }

    /// Dequantization engine (Figure 9b): per lane a scale multiplier and
    /// un-shift adder; plus the zero-insert shifter network and the
    /// dense/sparse synchronization stream buffers (the dominant cost —
    /// this is why dequant is 3.4× larger than quant, matching Table 4).
    pub fn dequant_engine_mm2(&self) -> f64 {
        let per_lane = self.fp16_mul + self.fp16_add;
        let lanes = self.lanes as f64 * per_lane;
        let zero_insert = self.lanes as f64 * self.shifter_lane;
        let stream_buffers = 24.0 * self.sram_per_kib;
        lanes + zero_insert + stream_buffers
    }

    /// Remaining core logic: control unit, scalar register file, DMA engine
    /// and NoC interface (Figure 8's other blocks).
    pub fn core_other_mm2(&self) -> f64 {
        let control_unit = 0.42;
        let register_file = 48.0 * self.sram_per_kib;
        let dma_noc = 1.77;
        control_unit + register_file + dma_noc
    }

    /// Full compute-core area.
    pub fn core_mm2(&self) -> f64 {
        self.mpu_mm2()
            + self.vpu_mm2()
            + self.quant_engine_mm2()
            + self.dequant_engine_mm2()
            + self.core_other_mm2()
    }

    /// Table 4 rows: `(module, area_mm², percent_of_core)`.
    pub fn table4(&self) -> Vec<ComponentArea> {
        let core = self.core_mm2();
        let rows = [
            ("Matrix processing unit", self.mpu_mm2()),
            ("Vector processing unit", self.vpu_mm2()),
            ("Quantization engine", self.quant_engine_mm2()),
            ("Dequantization engine", self.dequant_engine_mm2()),
            ("Compute core", core),
        ];
        rows.iter()
            .map(|&(name, area)| ComponentArea {
                module: name.to_owned(),
                area_mm2: area,
                ratio_percent: 100.0 * area / core,
            })
            .collect()
    }

    /// Area overhead of the Oaken modules (quant + dequant engines) as a
    /// fraction of the core — the paper's headline 8.21%.
    pub fn oaken_overhead_percent(&self) -> f64 {
        100.0 * (self.quant_engine_mm2() + self.dequant_engine_mm2()) / self.core_mm2()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::tsmc28()
    }
}

/// One Table 4 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentArea {
    /// Module name.
    pub module: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Share of the compute core (%).
    pub ratio_percent: f64,
}

/// Accelerator-level power model (§6.2: 222.7 W vs the A100's 400 W TDP).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Compute-logic power density at 1 GHz, W/mm².
    pub logic_w_per_mm2: f64,
    /// Memory subsystem power (controllers + devices), W.
    pub memory_w: f64,
    /// Host interface and board overhead, W.
    pub board_w: f64,
}

impl PowerModel {
    /// Calibrated for the 256-core Oaken accelerator with LPDDR.
    pub fn oaken_lpddr() -> Self {
        Self {
            logic_w_per_mm2: 0.165,
            memory_w: 42.0,
            board_w: 13.0,
        }
    }

    /// Total accelerator power for `cores` compute cores of `core_mm2`
    /// each.
    pub fn total_w(&self, cores: usize, core_mm2: f64) -> f64 {
        self.logic_w_per_mm2 * cores as f64 * core_mm2 + self.memory_w + self.board_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_within_tolerance() {
        let m = AreaModel::tsmc28();
        let close = |got: f64, want: f64, tol: f64| (got - want).abs() / want < tol;
        assert!(close(m.mpu_mm2(), 0.908, 0.10), "MPU {}", m.mpu_mm2());
        assert!(close(m.vpu_mm2(), 0.239, 0.10), "VPU {}", m.vpu_mm2());
        assert!(
            close(m.quant_engine_mm2(), 0.074, 0.15),
            "quant {}",
            m.quant_engine_mm2()
        );
        assert!(
            close(m.dequant_engine_mm2(), 0.252, 0.15),
            "dequant {}",
            m.dequant_engine_mm2()
        );
        assert!(close(m.core_mm2(), 3.971, 0.10), "core {}", m.core_mm2());
    }

    #[test]
    fn oaken_overhead_near_8_percent() {
        let pct = AreaModel::tsmc28().oaken_overhead_percent();
        assert!((6.5..10.0).contains(&pct), "{pct}%");
    }

    #[test]
    fn dequant_larger_than_quant() {
        // Table 4: the dequant engine's buffers and zero-insert network make
        // it several times the quant engine.
        let m = AreaModel::tsmc28();
        let ratio = m.dequant_engine_mm2() / m.quant_engine_mm2();
        assert!((2.0..5.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn power_below_a100_tdp() {
        let m = AreaModel::tsmc28();
        let p = PowerModel::oaken_lpddr().total_w(256, m.core_mm2());
        assert!((200.0..245.0).contains(&p), "{p} W");
        assert!(p < 400.0 * 0.6, "≥40% below the A100 TDP");
    }

    #[test]
    fn table4_percentages_sum_sensibly() {
        let rows = AreaModel::tsmc28().table4();
        assert_eq!(rows.len(), 5);
        let core_row = rows.last().unwrap();
        assert!((core_row.ratio_percent - 100.0).abs() < 1e-9);
        let component_sum: f64 = rows[..4].iter().map(|r| r.ratio_percent).sum();
        assert!(component_sum < 100.0, "components exclude control/DMA");
    }
}

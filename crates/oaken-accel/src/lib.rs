//! Analytical performance, area, and power simulator for LLM accelerators
//! and GPU baselines — the evaluation substrate of the Oaken reproduction.
//!
//! The paper evaluates Oaken with "a hardware simulator for the Oaken
//! accelerator by extending the existing hardware simulator of LPU"
//! (§6.1). This crate plays that role: a roofline-style analytical model of
//! batched LLM inference with
//!
//! * per-phase latency (prefill vs generation) split into batchable
//!   *non-attention* segments and un-batchable *attention* segments
//!   (§2.2's activation-weight vs activation-activation distinction),
//! * bandwidth/capacity modelling for HBM and LPDDR devices (Table 1,
//!   Figure 4),
//! * per-method online quantization overheads driven by [`OnlineCost`]
//!   (topK sorting, channel reordering, mixed-precision warp divergence),
//!   overlapped on Oaken's dedicated engines and exposed on GPUs
//!   (Figure 12b),
//! * OOM/admission behaviour that produces the saturation and missing-bar
//!   shapes of Figures 4, 11, and 13,
//! * a component-level area/power model calibrated to the paper's TSMC
//!   28 nm synthesis results (Table 4),
//! * and the bandwidth–capacity trade-off space of Figure 1.
//!
//! This crate is purely **analytic** — closed-form latency/area/energy
//! over architectural parameters, no token is ever executed. Its executed
//! counterpart is `oaken-serving`'s `BatchEngine`, which runs the real
//! model over the paged pool; the two share capacity arithmetic through
//! [`SystemModel`] (`reserved_bytes`, `kv_bytes_per_request`,
//! `max_concurrent_batch`) so the analytic and measured paths cannot
//! drift apart.
//!
//! [`OnlineCost`]: oaken_core::OnlineCost

pub mod area;
pub mod energy;
pub mod policy;
pub mod spec;
pub mod system;
pub mod tradeoff;
pub mod utilization;

pub use area::{AreaModel, ComponentArea, PowerModel};
pub use energy::{energy_report, nominal_power_w, EnergyReport};
pub use policy::QuantPolicy;
pub use spec::{AcceleratorSpec, MemoryKind, MemorySpec, PlatformKind};
pub use system::{CapacityPolicy, IterationBreakdown, RunResult, SystemModel, Workload};
pub use tradeoff::{tradeoff_space, TradeoffPoint};
pub use utilization::{generation_utilization, OpSegment, UtilizationReport};

//! Hardware specifications: memory devices and accelerator platforms
//! (paper Table 1 and Figure 4c).

use serde::{Deserialize, Serialize};

/// Memory technology, the two ends of the bandwidth-capacity trade-off
/// (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// High-bandwidth memory: bandwidth-rich, capacity-poor.
    Hbm,
    /// LPDDR DRAM: capacity-rich, bandwidth-poor.
    Lpddr,
}

/// A memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Technology.
    pub kind: MemoryKind,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Capacity in bytes.
    pub capacity: u64,
}

impl MemorySpec {
    /// A100-class HBM: 2.0 TB/s, 80 GB (Table 1).
    pub fn hbm_80gb() -> Self {
        Self {
            kind: MemoryKind::Hbm,
            bandwidth: 2.0e12,
            capacity: 80 * (1 << 30),
        }
    }

    /// CXL-PNM-class LPDDR: 1.1 TB/s, 256 GB (Table 1).
    pub fn lpddr_256gb() -> Self {
        Self {
            kind: MemoryKind::Lpddr,
            bandwidth: 1.1e12,
            capacity: 256 * (1 << 30),
        }
    }

    /// Scales capacity (e.g. two pipeline-parallel GPUs ⇒ 160 GB at the
    /// same per-pipeline bandwidth, the paper's multi-GPU convention §6.1).
    pub fn with_capacity_scale(self, factor: u64) -> Self {
        Self {
            capacity: self.capacity * factor,
            ..self
        }
    }
}

/// GPU or NPU/ASIC execution style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// SIMT GPU: pays warp-divergence penalties for irregular quantization
    /// kernels.
    Gpu,
    /// Streaming NPU/ASIC (LPU-style): matrix units stream weights from
    /// memory; dedicated quantization engines sit in the DMA path.
    Npu,
}

/// An accelerator platform (Table 1 / Figure 4c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    /// Platform name as it appears in the figures.
    pub name: String,
    /// Peak FP16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Core clock in Hz.
    pub freq: f64,
    /// Compute cores (LPU-style NPUs; informational for GPUs).
    pub num_cores: usize,
    /// Vector lanes per core (sizing the quant/dequant engines).
    pub lanes_per_core: usize,
    /// Memory subsystem.
    pub mem: MemorySpec,
    /// Execution style.
    pub kind: PlatformKind,
    /// Fraction of peak achieved on large batched GEMM.
    pub matmul_efficiency: f64,
    /// Fraction of peak achieved on memory-irregular vector work
    /// (attention score/context kernels, dequantization on GPUs).
    pub vector_efficiency: f64,
    /// Whether the systolic/matrix pipeline requires padding batches to the
    /// longest prompt (Tender's weakness on traces, Figure 14).
    pub pads_to_max_prompt: bool,
    /// Fraction of roofline performance the serving stack sustains
    /// end-to-end. GPU serving systems lose time to kernel launches, host
    /// scheduling, and batching glue; LPU-style ASICs run a thin streaming
    /// pipeline (§5.3) and stay near the roofline.
    pub framework_efficiency: f64,
}

impl AcceleratorSpec {
    /// NVIDIA A100 80 GB (Table 1): 312 TFLOPS, 1.4 GHz, HBM.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_owned(),
            peak_flops: 312e12,
            freq: 1.4e9,
            num_cores: 108,
            lanes_per_core: 64,
            mem: MemorySpec::hbm_80gb(),
            kind: PlatformKind::Gpu,
            matmul_efficiency: 0.55,
            vector_efficiency: 0.30,
            pads_to_max_prompt: false,
            framework_efficiency: 0.65,
        }
    }

    /// Two pipeline-parallel A100s: same bandwidth/compute per stage,
    /// doubled capacity (the paper's setup for OPT-30B/Mixtral/Llama2-70B).
    pub fn a100_x2() -> Self {
        let mut s = Self::a100();
        s.name = "A100x2".to_owned();
        s.mem = s.mem.with_capacity_scale(2);
        s
    }

    /// Oaken accelerator with HBM (Table 1): 270 TFLOPS, 1 GHz, 2 TB/s,
    /// 80 GB.
    pub fn oaken_hbm() -> Self {
        Self {
            name: "Oaken-HBM".to_owned(),
            peak_flops: 270e12,
            freq: 1.0e9,
            num_cores: 256,
            lanes_per_core: 32,
            mem: MemorySpec::hbm_80gb(),
            kind: PlatformKind::Npu,
            matmul_efficiency: 0.75,
            vector_efficiency: 0.50,
            pads_to_max_prompt: false,
            framework_efficiency: 0.95,
        }
    }

    /// Oaken accelerator with LPDDR (Table 1): 270 TFLOPS, 1.1 TB/s,
    /// 256 GB.
    pub fn oaken_lpddr() -> Self {
        Self {
            name: "Oaken-LPDDR".to_owned(),
            mem: MemorySpec::lpddr_256gb(),
            ..Self::oaken_hbm()
        }
    }

    /// The baseline LPU (Oaken's host accelerator without the quantization
    /// modules), LPDDR variant used in Figures 11–14.
    pub fn lpu() -> Self {
        Self {
            name: "LPU".to_owned(),
            ..Self::oaken_lpddr()
        }
    }

    /// HBM-NPU of the Figure 4 motivation study: 270.3 TFLOPS, 2 TB/s,
    /// 80 GB.
    pub fn hbm_npu() -> Self {
        Self {
            name: "HBM-NPU".to_owned(),
            ..Self::oaken_hbm()
        }
    }

    /// LPDDR-NPU of the Figure 4 motivation study: 270.3 TFLOPS, 1.1 TB/s,
    /// 256 GB.
    pub fn lpddr_npu() -> Self {
        Self {
            name: "LPDDR-NPU".to_owned(),
            ..Self::oaken_lpddr()
        }
    }

    /// Tender: quantization ASIC with systolic arrays, aligned to A100
    /// memory/compute per §6.1, padding-sensitive on traces.
    pub fn tender() -> Self {
        Self {
            name: "Tender".to_owned(),
            peak_flops: 312e12,
            freq: 1.0e9,
            num_cores: 128,
            lanes_per_core: 32,
            mem: MemorySpec::hbm_80gb(),
            kind: PlatformKind::Npu,
            // Systolic arrays are tuned for quantized GEMM, not decode
            // GEMV: low vector efficiency, and per-group runtime
            // requantization breaks read bursts (hence the low sustained
            // KV read efficiency in `QuantPolicy::tender`).
            matmul_efficiency: 0.50,
            vector_efficiency: 0.25,
            pads_to_max_prompt: true,
            framework_efficiency: 0.80,
        }
    }

    /// Dedicated quant/dequant engine throughput in elements/second:
    /// one element per lane per cycle, streaming with the DMA.
    pub fn engine_elems_per_s(&self) -> f64 {
        self.num_cores as f64 * self.lanes_per_core as f64 * self.freq
    }

    /// Effective batched-GEMM efficiency at batch size `b`: utilization
    /// saturates as the batch fills the cores (Figure 3's prefill vs
    /// generation asymmetry).
    pub fn gemm_efficiency_at(&self, b: usize) -> f64 {
        let sat = b as f64 / (b as f64 + 8.0);
        self.matmul_efficiency * sat.max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_specs() {
        let a = AcceleratorSpec::a100();
        assert_eq!(a.peak_flops, 312e12);
        assert_eq!(a.mem.bandwidth, 2.0e12);
        assert_eq!(a.mem.capacity, 80 * (1 << 30));
        let o = AcceleratorSpec::oaken_lpddr();
        assert_eq!(o.peak_flops, 270e12);
        assert_eq!(o.mem.bandwidth, 1.1e12);
        assert_eq!(o.mem.capacity, 256 * (1 << 30));
    }

    #[test]
    fn multi_gpu_scales_capacity_only() {
        let one = AcceleratorSpec::a100();
        let two = AcceleratorSpec::a100_x2();
        assert_eq!(two.mem.capacity, 2 * one.mem.capacity);
        assert_eq!(two.mem.bandwidth, one.mem.bandwidth);
        assert_eq!(two.peak_flops, one.peak_flops);
    }

    #[test]
    fn gemm_efficiency_grows_with_batch() {
        let a = AcceleratorSpec::a100();
        assert!(a.gemm_efficiency_at(256) > a.gemm_efficiency_at(1));
        assert!(a.gemm_efficiency_at(256) <= a.matmul_efficiency);
    }

    #[test]
    fn engine_rate_matches_lanes() {
        let o = AcceleratorSpec::oaken_hbm();
        assert_eq!(o.engine_elems_per_s(), 256.0 * 32.0 * 1.0e9);
    }

    #[test]
    fn tender_pads_to_max_prompt() {
        assert!(AcceleratorSpec::tender().pads_to_max_prompt);
        assert!(!AcceleratorSpec::a100().pads_to_max_prompt);
    }
}

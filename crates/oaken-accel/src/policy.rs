//! Quantization policies: what the system stores the KV cache (and
//! weights) in, and what the online machinery costs — the knobs that
//! separate the eight systems of Figure 11.

use oaken_core::OnlineCost;
use serde::{Deserialize, Serialize};

/// A system-level quantization policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantPolicy {
    /// Policy name as used in figure legends.
    pub name: String,
    /// Stored bits per KV-cache element (effective bitwidth).
    pub kv_bits: f64,
    /// Stored bits per weight parameter.
    pub weight_bits: f64,
    /// Online cost descriptor (serialized alongside for reports).
    #[serde(skip, default = "OnlineCost::free")]
    pub cost: OnlineCost,
    /// Whether (de)quantization runs on dedicated engines in the DMA path
    /// (overlapped, §5.3) rather than on the compute cores.
    pub dedicated_engine: bool,
    /// Fraction of physical bandwidth sustained on KV-cache reads. Oaken's
    /// page-based MMU keeps reads burst-aligned (§5.2, "maximal bandwidth,
    /// close to the physical limit"); mixed-precision sparse layouts
    /// (KVQuant/KIVI) and reorder-indexed layouts (QServe/Atom/Tender)
    /// scatter accesses and waste bus transactions.
    pub kv_read_efficiency: f64,
}

impl QuantPolicy {
    /// FP16 everything — vLLM and the plain LPU.
    pub fn fp16() -> Self {
        Self {
            name: "FP16".to_owned(),
            kv_bits: 16.0,
            weight_bits: 16.0,
            cost: OnlineCost::free(),
            dedicated_engine: false,
            kv_read_efficiency: 0.85,
        }
    }

    /// Oaken: 4.8-bit effective KV, overlapped dedicated engines.
    pub fn oaken() -> Self {
        Self {
            name: "Oaken".to_owned(),
            kv_bits: 4.8,
            weight_bits: 16.0,
            cost: OnlineCost {
                quant_flops_per_elem: 5.0,
                dequant_flops_per_elem: 3.0,
                sort_nlogn: false,
                channel_reorder: false,
                gpu_divergence_penalty: 4.0,
            },
            dedicated_engine: true,
            kv_read_efficiency: 0.95,
        }
    }

    /// Oaken's algorithm executed on GPU kernels (Figure 12b "Oaken-GPU"):
    /// same bits, no dedicated engines, warp divergence exposed. The
    /// three-way group branch, COO gather, and per-group scale lookups
    /// serialize most of a warp, so the divergence penalty is far larger
    /// than for uniform INT4 kernels (§6.2: "long quantization and
    /// dequantization latencies due to warp divergence in CUDA").
    pub fn oaken_gpu() -> Self {
        let mut p = Self::oaken();
        p.name = "Oaken-GPU".to_owned();
        p.dedicated_engine = false;
        p.kv_read_efficiency = 0.7;
        p.cost.gpu_divergence_penalty = 12.0;
        p
    }

    /// KVQuant on GPU: ~4.8-bit KV, online topK + FP16 sparse
    /// mixed-precision kernels.
    pub fn kvquant() -> Self {
        Self {
            name: "KVQuant".to_owned(),
            kv_bits: 4.86,
            weight_bits: 16.0,
            cost: OnlineCost {
                quant_flops_per_elem: 4.0,
                dequant_flops_per_elem: 2.0,
                sort_nlogn: true,
                channel_reorder: false,
                gpu_divergence_penalty: 6.0,
            },
            dedicated_engine: false,
            kv_read_efficiency: 0.6,
        }
    }

    /// KIVI on GPU: ~5-bit KV, FP16 residual mixed precision.
    pub fn kivi() -> Self {
        Self {
            name: "KIVI".to_owned(),
            kv_bits: 4.99,
            weight_bits: 16.0,
            cost: OnlineCost {
                quant_flops_per_elem: 3.0,
                dequant_flops_per_elem: 2.0,
                sort_nlogn: false,
                channel_reorder: false,
                gpu_divergence_penalty: 5.0,
            },
            dedicated_engine: false,
            kv_read_efficiency: 0.65,
        }
    }

    /// QServe on GPU: 4.25-bit KV, smooth+reorder, lean INT4 kernels.
    pub fn qserve() -> Self {
        Self {
            name: "QServe".to_owned(),
            kv_bits: 4.25,
            weight_bits: 16.0,
            cost: OnlineCost {
                quant_flops_per_elem: 3.0,
                dequant_flops_per_elem: 3.0,
                sort_nlogn: false,
                channel_reorder: true,
                gpu_divergence_penalty: 1.2,
            },
            dedicated_engine: false,
            kv_read_efficiency: 0.75,
        }
    }

    /// Tender ASIC: 4.07-bit KV, shift-based requant on dedicated paths.
    pub fn tender() -> Self {
        Self {
            name: "Tender".to_owned(),
            kv_bits: 4.07,
            weight_bits: 16.0,
            cost: OnlineCost {
                quant_flops_per_elem: 1.5,
                dequant_flops_per_elem: 1.5,
                sort_nlogn: false,
                channel_reorder: true,
                gpu_divergence_penalty: 1.2,
            },
            dedicated_engine: true,
            kv_read_efficiency: 0.70,
        }
    }

    /// Weight-only INT4 quantization (Figure 5b "Weight Quant."): weights
    /// shrink, KV stays FP16.
    pub fn weight_only_int4() -> Self {
        Self {
            name: "Weight-INT4".to_owned(),
            kv_bits: 16.0,
            weight_bits: 4.0,
            cost: OnlineCost {
                quant_flops_per_elem: 0.0,
                dequant_flops_per_elem: 1.0,
                sort_nlogn: false,
                channel_reorder: false,
                gpu_divergence_penalty: 1.0,
            },
            dedicated_engine: false,
            kv_read_efficiency: 0.85,
        }
    }

    /// Plain 4-bit KV quantization (Figure 5b "KV Quant."): per-token
    /// min/max INT4 with no outlier handling.
    pub fn kv_int4_plain() -> Self {
        Self {
            name: "KV-INT4".to_owned(),
            kv_bits: 4.25,
            weight_bits: 16.0,
            cost: OnlineCost {
                quant_flops_per_elem: 2.0,
                dequant_flops_per_elem: 2.0,
                sort_nlogn: false,
                channel_reorder: false,
                gpu_divergence_penalty: 1.2,
            },
            dedicated_engine: true,
            kv_read_efficiency: 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_bits_match_table2() {
        assert_eq!(QuantPolicy::oaken().kv_bits, 4.8);
        assert!((QuantPolicy::kvquant().kv_bits - 4.86).abs() < 0.01);
        assert!((QuantPolicy::kivi().kv_bits - 4.99).abs() < 0.01);
        assert_eq!(QuantPolicy::qserve().kv_bits, 4.25);
        assert!((QuantPolicy::tender().kv_bits - 4.07).abs() < 0.01);
    }

    #[test]
    fn only_asic_policies_overlap() {
        assert!(QuantPolicy::oaken().dedicated_engine);
        assert!(QuantPolicy::tender().dedicated_engine);
        assert!(!QuantPolicy::oaken_gpu().dedicated_engine);
        assert!(!QuantPolicy::kvquant().dedicated_engine);
    }

    #[test]
    fn kvquant_pays_for_sorting() {
        assert!(QuantPolicy::kvquant().cost.sort_nlogn);
        assert!(!QuantPolicy::oaken().cost.sort_nlogn);
    }
}

//! The bandwidth–capacity trade-off space of Figure 1: effective bandwidth
//! and effective capacity ("the scale of data that can be transmitted
//! to/from and stored on memory") for the solution landscape, with a
//! throughput estimate from the system model.

use crate::policy::QuantPolicy;
use crate::spec::AcceleratorSpec;
use crate::system::{SystemModel, Workload};
use oaken_model::ModelConfig;

/// One point in the Figure 1 scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Solution name.
    pub name: String,
    /// Category used for the figure's marker shapes.
    pub category: &'static str,
    /// Effective bandwidth in TB/s (raw × 16/kv_bits for quantizing
    /// systems; raw × internal-stack factor for PIM/PNM).
    pub eff_bandwidth_tbps: f64,
    /// Effective capacity in GB (same scaling).
    pub eff_capacity_gb: f64,
    /// Modelled throughput in tokens/s on Llama2-13B, batch 256, 1K:1K
    /// (`None` for systems our model does not simulate, e.g. PIM).
    pub throughput: Option<f64>,
}

fn quantized_point(
    name: &str,
    category: &'static str,
    accel: AcceleratorSpec,
    policy: QuantPolicy,
) -> TradeoffPoint {
    let factor = 16.0 / policy.kv_bits;
    let model = ModelConfig::llama2_13b();
    let run = SystemModel::new(accel.clone(), policy.clone())
        .with_capacity(crate::system::CapacityPolicy::Waves)
        .run(&model, &Workload::one_k_one_k(256));
    TradeoffPoint {
        name: name.to_owned(),
        category,
        eff_bandwidth_tbps: accel.mem.bandwidth * factor / 1e12,
        eff_capacity_gb: accel.mem.capacity as f64 * factor / 1e9,
        throughput: Some(run.throughput),
    }
}

/// Builds the Figure 1 landscape.
pub fn tradeoff_space() -> Vec<TradeoffPoint> {
    let mut points = vec![
        quantized_point("A100", "gpu", AcceleratorSpec::a100(), QuantPolicy::fp16()),
        quantized_point(
            "KVQuant",
            "gpu-quant",
            AcceleratorSpec::a100(),
            QuantPolicy::kvquant(),
        ),
        quantized_point(
            "QServe",
            "gpu-quant",
            AcceleratorSpec::a100(),
            QuantPolicy::qserve(),
        ),
        quantized_point(
            "Atom",
            "gpu-quant",
            AcceleratorSpec::a100(),
            QuantPolicy::qserve(), // Atom's system profile matches QServe's
        ),
        quantized_point(
            "Tender",
            "accelerator",
            AcceleratorSpec::tender(),
            QuantPolicy::tender(),
        ),
        quantized_point(
            "LPU",
            "accelerator",
            AcceleratorSpec::lpu(),
            QuantPolicy::fp16(),
        ),
        quantized_point(
            "Oaken",
            "accelerator",
            AcceleratorSpec::oaken_lpddr(),
            QuantPolicy::oaken(),
        ),
    ];
    // Mark Atom with its own name (constructed with QServe's profile).
    if let Some(p) = points.iter_mut().find(|p| p.name == "Atom") {
        p.name = "Atom".to_owned();
    }
    // Fixed-position references we do not simulate end-to-end.
    points.extend([
        TradeoffPoint {
            name: "TPUv4".to_owned(),
            category: "gpu",
            eff_bandwidth_tbps: 1.2,
            eff_capacity_gb: 32.0,
            throughput: None,
        },
        TradeoffPoint {
            name: "DFX".to_owned(),
            category: "accelerator",
            eff_bandwidth_tbps: 0.9,
            eff_capacity_gb: 16.0,
            throughput: None,
        },
        TradeoffPoint {
            name: "NeuPIMs".to_owned(),
            category: "pim",
            eff_bandwidth_tbps: 6.0,
            eff_capacity_gb: 48.0,
            throughput: None,
        },
        TradeoffPoint {
            name: "AttAcc".to_owned(),
            category: "pim",
            eff_bandwidth_tbps: 8.0,
            eff_capacity_gb: 80.0,
            throughput: None,
        },
        TradeoffPoint {
            name: "TransPIM".to_owned(),
            category: "pim",
            eff_bandwidth_tbps: 4.5,
            eff_capacity_gb: 16.0,
            throughput: None,
        },
        TradeoffPoint {
            name: "CXL-PNM".to_owned(),
            category: "pim",
            eff_bandwidth_tbps: 1.1,
            eff_capacity_gb: 512.0,
            throughput: None,
        },
    ]);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oaken_dominates_capacity_corner() {
        let pts = tradeoff_space();
        let oaken = pts.iter().find(|p| p.name == "Oaken").unwrap();
        let a100 = pts.iter().find(|p| p.name == "A100").unwrap();
        // Oaken: LPDDR capacity × 16/4.8 ≈ 853 GB effective.
        assert!(oaken.eff_capacity_gb > 800.0, "{}", oaken.eff_capacity_gb);
        assert!(oaken.eff_bandwidth_tbps > a100.eff_bandwidth_tbps);
        assert!(oaken.eff_capacity_gb > a100.eff_capacity_gb * 8.0);
    }

    #[test]
    fn oaken_throughput_leads_simulated_systems() {
        let pts = tradeoff_space();
        let oaken = pts
            .iter()
            .find(|p| p.name == "Oaken")
            .and_then(|p| p.throughput)
            .unwrap();
        for p in pts.iter().filter(|p| p.throughput.is_some()) {
            assert!(
                oaken >= p.throughput.unwrap() * 0.99,
                "{} beats Oaken: {} vs {oaken}",
                p.name,
                p.throughput.unwrap()
            );
        }
    }

    #[test]
    fn landscape_has_all_categories() {
        let pts = tradeoff_space();
        for cat in ["gpu", "gpu-quant", "accelerator", "pim"] {
            assert!(pts.iter().any(|p| p.category == cat), "missing {cat}");
        }
        assert!(pts.len() >= 12);
    }
}

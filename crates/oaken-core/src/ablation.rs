//! Group-count ablation (paper Table 3): generalized N-group band
//! quantization used to evaluate 2-, 3-, 4-, and 5-group variants of
//! Oaken's scheme at a fixed 10% total outlier ratio.
//!
//! Bands are magnitude shells: the outermost band(s) hold the largest
//! tail values, the innermost band(s) the near-zero values, and the middle
//! band the inliers. Each band is min/max-uniform quantized (which is
//! equivalent to group-shift: a band's minimum *is* its shift threshold).
//!
//! Effective bitwidth follows the paper's alignment arithmetic:
//!
//! * ≤3 bands with 5-bit outliers → 8-bit COO entries (6 index + ≤1 group
//!   + 1 sign, padded to a byte for 2 bands);
//! * 4–5 bands with 5-bit outliers → two group bits push the entry to
//!   9 bits, which breaks byte alignment and pads to 16;
//! * 4–5 bands with 4-bit outliers → the magnitude loses a bit to keep
//!   8-bit entries ("slightly reduces accuracy", Table 3's last rows).

use crate::quant::UniformQuantizer;
use crate::thresholds::KvKind;
use crate::traits::{KvQuantizer, OnlineCost};

/// Which shell a band occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandKind {
    /// Large-magnitude tail.
    Outer,
    /// Inliers (stored dense).
    Middle,
    /// Near-zero shell.
    Inner,
}

/// One magnitude band with its target occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandSpec {
    /// Shell kind.
    pub kind: BandKind,
    /// Fraction of values in this band.
    pub ratio: f64,
}

/// A Table 3 configuration: ordered outermost→innermost bands.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationQuantizer {
    /// Row label, e.g. `"4/90/6"`.
    pub label: String,
    /// Bands ordered outermost (largest magnitudes) to innermost.
    pub bands: Vec<BandSpec>,
    /// Outlier precision: 5 (sign + 4 magnitude) or 4.
    pub outlier_bits: u8,
}

impl AblationQuantizer {
    /// Builds a configuration from `(kind, ratio)` pairs ordered
    /// outermost→innermost.
    ///
    /// # Panics
    ///
    /// Panics if ratios do not sum to ~1 or no middle band is present.
    pub fn new(label: &str, bands: Vec<BandSpec>, outlier_bits: u8) -> Self {
        let sum: f64 = bands.iter().map(|b| b.ratio).sum();
        assert!((sum - 1.0).abs() < 1e-6, "band ratios must sum to 1: {sum}");
        assert!(
            bands.iter().any(|b| b.kind == BandKind::Middle),
            "a middle band is required"
        );
        Self {
            label: label.to_owned(),
            bands,
            outlier_bits,
        }
    }

    /// The nine Table 3 rows (10% total outliers throughout).
    pub fn paper_rows() -> Vec<AblationQuantizer> {
        use BandKind::{Inner, Middle, Outer};
        let b = |kind, ratio| BandSpec { kind, ratio };
        vec![
            // 3 groups (the shipping configuration).
            Self::new(
                "4/90/6",
                vec![b(Outer, 0.04), b(Middle, 0.90), b(Inner, 0.06)],
                5,
            ),
            // 2 groups.
            Self::new("90/10", vec![b(Middle, 0.90), b(Inner, 0.10)], 5),
            Self::new("10/90", vec![b(Outer, 0.10), b(Middle, 0.90)], 5),
            // 4–5 groups, 5-bit outliers.
            Self::new(
                "4/90/3/3",
                vec![
                    b(Outer, 0.04),
                    b(Middle, 0.90),
                    b(Inner, 0.03),
                    b(Inner, 0.03),
                ],
                5,
            ),
            Self::new(
                "2/2/90/6",
                vec![
                    b(Outer, 0.02),
                    b(Outer, 0.02),
                    b(Middle, 0.90),
                    b(Inner, 0.06),
                ],
                5,
            ),
            Self::new(
                "2/2/90/3/3",
                vec![
                    b(Outer, 0.02),
                    b(Outer, 0.02),
                    b(Middle, 0.90),
                    b(Inner, 0.03),
                    b(Inner, 0.03),
                ],
                5,
            ),
            // 4–5 groups, 4-bit outliers (keeps 8-bit alignment).
            Self::new(
                "4/90/3/3 (4b)",
                vec![
                    b(Outer, 0.04),
                    b(Middle, 0.90),
                    b(Inner, 0.03),
                    b(Inner, 0.03),
                ],
                4,
            ),
            Self::new(
                "2/2/90/6 (4b)",
                vec![
                    b(Outer, 0.02),
                    b(Outer, 0.02),
                    b(Middle, 0.90),
                    b(Inner, 0.06),
                ],
                4,
            ),
            Self::new(
                "2/2/90/3/3 (4b)",
                vec![
                    b(Outer, 0.02),
                    b(Outer, 0.02),
                    b(Middle, 0.90),
                    b(Inner, 0.03),
                    b(Inner, 0.03),
                ],
                5,
            ),
        ]
    }

    /// Number of bands.
    pub fn num_groups(&self) -> usize {
        self.bands.len()
    }

    /// Total outlier (non-middle) fraction.
    pub fn outlier_fraction(&self) -> f64 {
        self.bands
            .iter()
            .filter(|b| b.kind != BandKind::Middle)
            .map(|b| b.ratio)
            .sum()
    }

    /// COO entry bits after the paper's alignment arithmetic.
    pub fn sparse_entry_bits(&self) -> u32 {
        let outlier_bands = self.bands.len() - 1; // bands minus the middle
        if self.outlier_bits <= 4 || outlier_bands <= 2 {
            // 4-bit magnitudes keep everything byte-aligned, and ≤2 outlier
            // bands fit 6 idx + ≤1 group + 1 sign in one byte.
            8
        } else {
            16 // 9-bit entries break alignment → pad to two bytes
        }
    }

    /// Effective bitwidth: 4-bit dense + per-outlier entry bits.
    pub fn effective_bitwidth(&self) -> f64 {
        4.0 + self.outlier_fraction() * f64::from(self.sparse_entry_bits())
    }

    /// Quantize-dequantizes one vector with oracle per-vector band
    /// boundaries (sorted magnitudes), isolating the *group structure*
    /// effect that Table 3 measures.
    pub fn roundtrip_vector(&self, x: &[f32]) -> Vec<f32> {
        if x.is_empty() {
            return Vec::new();
        }
        let n = x.len();
        let mut mags: Vec<f32> = x.iter().map(|v| v.abs()).collect();
        mags.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        // Band boundaries by magnitude rank, outermost first.
        let mut boundaries = Vec::with_capacity(self.bands.len());
        let mut taken = 0usize;
        for band in &self.bands {
            let count = ((band.ratio * n as f64).round() as usize).min(n - taken);
            let lo_rank = (taken + count).min(n) - 1;
            boundaries.push(mags[lo_rank.min(n - 1)]);
            taken += count;
        }
        // Last band always reaches down to magnitude 0.
        if let Some(last) = boundaries.last_mut() {
            *last = 0.0;
        }

        // Assign each element to the first band whose lower bound it meets.
        let mut assignment = vec![0usize; n];
        for (i, &v) in x.iter().enumerate() {
            let m = v.abs();
            let mut chosen = self.bands.len() - 1;
            for (bi, &lo) in boundaries.iter().enumerate() {
                if m >= lo {
                    chosen = bi;
                    break;
                }
            }
            assignment[i] = chosen;
        }

        // Per band: sign-magnitude uniform quantization over the band's
        // magnitude range (min/max scaling ≡ group shift).
        let mut out = vec![0.0f32; n];
        for bi in 0..self.bands.len() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == bi).collect();
            if members.is_empty() {
                continue;
            }
            let bits = if self.bands[bi].kind == BandKind::Middle {
                4
            } else {
                self.outlier_bits.max(2) - 1 // one bit spent on the sign
            };
            let band_mags: Vec<f32> = members.iter().map(|&i| x[i].abs()).collect();
            let q =
                UniformQuantizer::from_values(&band_mags, bits.max(1)).expect("bit-width in range");
            for &i in &members {
                let rec = q.dequantize(q.quantize(x[i].abs()));
                out[i] = rec.copysign(x[i]);
            }
        }
        out
    }
}

impl KvQuantizer for AblationQuantizer {
    fn name(&self) -> &'static str {
        "ablation"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let mut out = Vec::with_capacity(data.len());
        for r in 0..rows {
            out.extend(self.roundtrip_vector(&data[r * d..(r + 1) * d]));
        }
        out
    }

    fn effective_bits(&self, _rows: usize, _d: usize) -> f64 {
        self.effective_bitwidth()
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 5.0,
            dequant_flops_per_elem: 3.0,
            sort_nlogn: false,
            channel_reorder: false,
            gpu_divergence_penalty: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let base = (((i * 2654435761) % 10000) as f32 / 5000.0 - 1.0) * 3.0;
                match i % 41 {
                    0 => base * 12.0,
                    1 => base * 0.01,
                    _ => base,
                }
            })
            .collect()
    }

    #[test]
    fn paper_rows_have_expected_bitwidths() {
        let rows = AblationQuantizer::paper_rows();
        assert_eq!(rows.len(), 9);
        let by_label = |l: &str| {
            rows.iter()
                .find(|r| r.label == l)
                .unwrap_or_else(|| panic!("row {l}"))
        };
        assert!((by_label("4/90/6").effective_bitwidth() - 4.8).abs() < 1e-9);
        assert!((by_label("90/10").effective_bitwidth() - 4.8).abs() < 1e-9);
        assert!((by_label("4/90/3/3").effective_bitwidth() - 5.6).abs() < 1e-9);
        assert!((by_label("2/2/90/3/3").effective_bitwidth() - 5.6).abs() < 1e-9);
        assert!((by_label("4/90/3/3 (4b)").effective_bitwidth() - 4.8).abs() < 1e-9);
    }

    #[test]
    fn three_groups_beat_two_without_outer_isolation() {
        // "90/10" (no outer band) lets tail values stretch the middle
        // scale — the paper's worst row.
        let rows = AblationQuantizer::paper_rows();
        let three = rows.iter().find(|r| r.label == "4/90/6").unwrap();
        let two = rows.iter().find(|r| r.label == "90/10").unwrap();
        let x = sample(4096);
        let mse = |q: &AblationQuantizer| {
            let y = q.roundtrip_vector(&x);
            x.iter()
                .zip(&y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(
            mse(three) < mse(two),
            "3-group {} vs 2-group(90/10) {}",
            mse(three),
            mse(two)
        );
    }

    #[test]
    fn more_groups_do_not_hurt() {
        let rows = AblationQuantizer::paper_rows();
        let three = rows.iter().find(|r| r.label == "4/90/6").unwrap();
        let five = rows.iter().find(|r| r.label == "2/2/90/3/3").unwrap();
        let x = sample(4096);
        let mse = |q: &AblationQuantizer| {
            let y = q.roundtrip_vector(&x);
            x.iter()
                .zip(&y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(mse(five) <= mse(three) * 1.05);
    }

    #[test]
    fn four_bit_outliers_slightly_worse() {
        let rows = AblationQuantizer::paper_rows();
        let five_bit = rows.iter().find(|r| r.label == "4/90/3/3").unwrap();
        let four_bit = rows.iter().find(|r| r.label == "4/90/3/3 (4b)").unwrap();
        let x = sample(4096);
        let mse = |q: &AblationQuantizer| {
            let y = q.roundtrip_vector(&x);
            x.iter()
                .zip(&y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(mse(four_bit) >= mse(five_bit));
    }

    #[test]
    fn roundtrip_preserves_shape_and_signs() {
        let q = &AblationQuantizer::paper_rows()[0];
        let x = sample(512);
        let y = q.roundtrip_vector(&x);
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y) {
            if a.abs() > 0.5 {
                assert_eq!(a.signum(), b.signum(), "sign flip at magnitude {a}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_ratios() {
        AblationQuantizer::new(
            "bad",
            vec![BandSpec {
                kind: BandKind::Middle,
                ratio: 0.5,
            }],
            5,
        );
    }
}

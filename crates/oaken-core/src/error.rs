//! Error type for the quantization pipeline.

use std::fmt;

/// Errors produced by the Oaken quantization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OakenError {
    /// Group ratios must be positive and sum to 1.
    InvalidRatios {
        /// Offending outer/middle/inner ratios.
        outer: f64,
        middle: f64,
        inner: f64,
    },
    /// Thresholds must be ordered `outer_lo <= inner_lo <= inner_hi <= outer_hi`.
    InvalidThresholds {
        /// Human-readable description of the violated ordering.
        detail: String,
    },
    /// A layer index was out of range for the profiled model.
    LayerOutOfRange {
        /// Requested layer.
        layer: usize,
        /// Number of profiled layers.
        layers: usize,
    },
    /// The profiler finished without observing any data for a layer.
    UnprofiledLayer {
        /// The layer that has no statistics.
        layer: usize,
    },
    /// A packed vector's dimension disagrees with the caller's expectation.
    DimensionMismatch {
        /// Expected vector dimension.
        expected: usize,
        /// Dimension found in the encoded data.
        actual: usize,
    },
    /// An encoded buffer failed validation (truncated or corrupt).
    CorruptEncoding {
        /// Human-readable description.
        detail: String,
    },
    /// A quantization bit-width outside the supported 1..=8 range.
    UnsupportedBitWidth {
        /// The requested width.
        bits: u8,
    },
}

impl fmt::Display for OakenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OakenError::InvalidRatios {
                outer,
                middle,
                inner,
            } => write!(
                f,
                "group ratios must be positive and sum to 1, got outer={outer} middle={middle} inner={inner}"
            ),
            OakenError::InvalidThresholds { detail } => {
                write!(f, "invalid threshold ordering: {detail}")
            }
            OakenError::LayerOutOfRange { layer, layers } => {
                write!(f, "layer {layer} out of range for {layers} profiled layers")
            }
            OakenError::UnprofiledLayer { layer } => {
                write!(f, "layer {layer} has no profiling statistics")
            }
            OakenError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, found {actual}")
            }
            OakenError::CorruptEncoding { detail } => {
                write!(f, "corrupt encoding: {detail}")
            }
            OakenError::UnsupportedBitWidth { bits } => {
                write!(f, "unsupported quantization bit-width {bits} (must be 1..=8)")
            }
        }
    }
}

impl std::error::Error for OakenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let errors: Vec<OakenError> = vec![
            OakenError::InvalidRatios {
                outer: 0.5,
                middle: 0.6,
                inner: 0.1,
            },
            OakenError::LayerOutOfRange {
                layer: 5,
                layers: 2,
            },
            OakenError::UnprofiledLayer { layer: 0 },
            OakenError::DimensionMismatch {
                expected: 8,
                actual: 4,
            },
            OakenError::UnsupportedBitWidth { bits: 12 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(msg.starts_with(|c: char| c.is_lowercase()), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }
}

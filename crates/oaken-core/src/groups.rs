//! Online group classification (paper Eq. 1).
//!
//! Given the offline thresholds, every incoming KV value is classified into
//! one of three quantization groups in O(1) — this replaces the O(n log n)
//! online topK that makes prior mixed-precision schemes impractical (§4.3).

use crate::thresholds::Thresholds;

/// The three quantization groups of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKind {
    /// Large-magnitude outliers: `x < T_o_lo` or `x > T_o_hi`.
    Outer,
    /// Inliers: between the outer and inner thresholds on either side.
    Middle,
    /// Near-zero outliers: `T_i_lo <= x <= T_i_hi`.
    Inner,
}

impl GroupKind {
    /// Whether this group is stored sparsely (outer and inner are the
    /// "outliers" that go to the COO side of the fused encoding).
    pub fn is_outlier(self) -> bool {
        matches!(self, GroupKind::Outer | GroupKind::Inner)
    }
}

/// Classifies one value per Eq. 1. Total: every finite `x` lands in exactly
/// one group.
#[inline]
pub fn classify(x: f32, t: &Thresholds) -> GroupKind {
    if x < t.outer_lo || x > t.outer_hi {
        GroupKind::Outer
    } else if (t.inner_lo..=t.inner_hi).contains(&x) {
        GroupKind::Inner
    } else {
        GroupKind::Middle
    }
}

/// Observed per-vector group occupancy, used to verify that offline
/// thresholds deliver the configured target ratios on unseen data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupStats {
    /// Number of outer-group values.
    pub outer: usize,
    /// Number of middle-group values.
    pub middle: usize,
    /// Number of inner-group values.
    pub inner: usize,
}

impl GroupStats {
    /// Classifies a whole vector and tallies group occupancy.
    pub fn of(values: &[f32], t: &Thresholds) -> Self {
        let mut s = GroupStats::default();
        for &x in values {
            match classify(x, t) {
                GroupKind::Outer => s.outer += 1,
                GroupKind::Middle => s.middle += 1,
                GroupKind::Inner => s.inner += 1,
            }
        }
        s
    }

    /// Total classified values.
    pub fn total(&self) -> usize {
        self.outer + self.middle + self.inner
    }

    /// Fraction of values that are outliers (outer + inner).
    pub fn outlier_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.outer + self.inner) as f64 / self.total() as f64
    }

    /// Merges two tallies.
    pub fn merge(&self, other: &GroupStats) -> GroupStats {
        GroupStats {
            outer: self.outer + other.outer,
            middle: self.middle + other.middle,
            inner: self.inner + other.inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;

    fn t() -> Thresholds {
        Thresholds::new(-4.0, -0.5, 0.5, 4.0).unwrap()
    }

    #[test]
    fn classify_each_region() {
        let t = t();
        assert_eq!(classify(-10.0, &t), GroupKind::Outer);
        assert_eq!(classify(10.0, &t), GroupKind::Outer);
        assert_eq!(classify(-2.0, &t), GroupKind::Middle);
        assert_eq!(classify(2.0, &t), GroupKind::Middle);
        assert_eq!(classify(0.0, &t), GroupKind::Inner);
        assert_eq!(classify(0.4, &t), GroupKind::Inner);
    }

    #[test]
    fn classify_boundaries_follow_eq1() {
        let t = t();
        // Eq. 1: G_m includes T_o_lo (<=) and T_o_hi (<=); G_i includes both
        // inner thresholds; x just above inner_hi is middle.
        assert_eq!(classify(-4.0, &t), GroupKind::Middle);
        assert_eq!(classify(4.0, &t), GroupKind::Middle);
        assert_eq!(classify(0.5, &t), GroupKind::Inner);
        assert_eq!(classify(-0.5, &t), GroupKind::Inner);
        assert_eq!(classify(0.500001, &t), GroupKind::Middle);
        assert_eq!(classify(4.000001, &t), GroupKind::Outer);
    }

    #[test]
    fn stats_partition_is_total() {
        let t = t();
        let vals: Vec<f32> = (-100..100).map(|i| i as f32 / 10.0).collect();
        let s = GroupStats::of(&vals, &t);
        assert_eq!(s.total(), vals.len());
        assert!(s.outer > 0 && s.middle > 0 && s.inner > 0);
    }

    #[test]
    fn outlier_fraction_empty_is_zero() {
        assert_eq!(GroupStats::default().outlier_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let a = GroupStats {
            outer: 1,
            middle: 2,
            inner: 3,
        };
        let b = GroupStats {
            outer: 10,
            middle: 20,
            inner: 30,
        };
        let m = a.merge(&b);
        assert_eq!(m.outer, 11);
        assert_eq!(m.middle, 22);
        assert_eq!(m.inner, 33);
    }

    #[test]
    fn is_outlier_flags() {
        assert!(GroupKind::Outer.is_outlier());
        assert!(GroupKind::Inner.is_outlier());
        assert!(!GroupKind::Middle.is_outlier());
    }
}

//! Oaken's online-offline hybrid KV cache quantization algorithm (§4 of the
//! paper), the primary contribution of the ISCA '25 paper *"Oaken: Fast and
//! Efficient LLM Serving with Online-Offline Hybrid KV Cache Quantization"*.
//!
//! The algorithm has three cooperating parts:
//!
//! 1. **Threshold-based online-offline hybrid quantization**
//!    ([`profiler::OfflineProfiler`], [`thresholds::Thresholds`]) — four
//!    outlier thresholds per model/layer are computed *offline* from ~100
//!    profiling inferences; *online*, each per-token KV vector is split into
//!    an *outer* (large-magnitude outlier), *middle* (inlier), and *inner*
//!    (near-zero outlier) group, and per-group scaling factors are computed
//!    from simple min/max statistics (paper Eq. 1–3).
//! 2. **Group-shift quantization** ([`groupshift`]) — the outer and middle
//!    groups are shifted by the profiled thresholds so each group occupies a
//!    narrow range and can be quantized to 4/5 bits without mixed precision
//!    (paper Eq. 4).
//! 3. **Fused dense-and-sparse encoding** ([`encoding`]) — inliers go to a
//!    packed 4-bit dense matrix; outliers become 8-bit COO entries (6 index
//!    bits + 1 group bit + 1 sign bit) whose 4-bit magnitude is *fused into
//!    the zeroed dense slot* they came from, cutting outlier storage from 23
//!    to 8 bits per entry while keeping memory alignment.
//!
//! The [`OakenQuantizer`] ties the three together behind the [`KvQuantizer`]
//! trait shared with the baseline reimplementations in `oaken-baselines`.
//!
//! # Quickstart
//!
//! ```
//! use oaken_core::{GroupRatios, OakenConfig, OakenQuantizer, OfflineProfiler};
//!
//! // Offline: profile thresholds from sample KV vectors.
//! let config = OakenConfig::default(); // 4% outer / 90% middle / 6% inner
//! let mut profiler = OfflineProfiler::new(config.clone(), 1);
//! let sample: Vec<f32> = (0..256).map(|i| ((i * 37 % 97) as f32 - 48.0) / 8.0).collect();
//! profiler.observe(0, oaken_core::KvKind::Key, &sample);
//! let thresholds = profiler.finish();
//!
//! // Online: quantize a fresh vector with the profiled thresholds.
//! let quantizer = OakenQuantizer::new(config, thresholds);
//! let fused = quantizer.quantize_vector(&sample, 0, oaken_core::KvKind::Key)?;
//! let restored = quantizer.dequantize_vector(&fused, 0, oaken_core::KvKind::Key)?;
//! assert_eq!(restored.len(), sample.len());
//! # Ok::<(), oaken_core::OakenError>(())
//! ```

pub mod ablation;
pub mod config;
pub mod encoding;
pub mod error;
pub mod granularity;
pub mod groups;
pub mod groupshift;
pub mod kernel;
pub mod pipeline;
pub mod profiler;
pub mod quant;
pub mod thresholds;
pub mod traits;

pub use ablation::{AblationQuantizer, BandKind, BandSpec};
pub use config::{BitWidths, GroupRatios, OakenConfig};
pub use encoding::{CooEntry, FusedVector, OutlierIter, ScaleSet};
pub use error::OakenError;
pub use granularity::{PerHeadProfiler, PerHeadQuantizer};
pub use groups::{classify, GroupKind, GroupStats};
pub use kernel::{
    decode_row_fused_into, EncodedReadPlan, FusedReadParams, OutlierPatch, RowDecode,
};
pub use pipeline::{CompressionReport, OakenQuantizer, OakenRowStream, OakenScratch};
pub use profiler::OfflineProfiler;
pub use quant::UniformQuantizer;
pub use thresholds::{KvKind, LayerThresholds, ModelThresholds, Thresholds};
pub use traits::{KvQuantizer, KvRowStream, OnlineCost};

//! Quantized-domain decode coefficients for the fused attention kernels.
//!
//! The exact read path decodes a [`FusedVector`] element by element:
//! build three [`UniformQuantizer`]s from the row's [`ScaleSet`], walk the
//! dense nibbles, branch on the reconstructed shifted value's sign
//! ([`crate::groupshift::unshift_middle`]), and patch outliers from the COO
//! stream. That is three constructor calls and a data-dependent branch per
//! element — fine for materializing a view once, too slow to run inside an
//! attention inner loop.
//!
//! [`RowDecode`] precomputes, **once per row**, everything the per-element
//! decode needs, in a form a dot-product kernel (scalar or SIMD) can
//! consume branchlessly:
//!
//! * the middle-group reconstruction collapses to one fused
//!   multiply-add, `v(c) = c · mid_step + base`, where `base` selects
//!   between `middle_min + T_i_hi` and `middle_min + T_i_lo`;
//! * the sign branch of `unshift_middle` becomes a **code-threshold
//!   compare** `c >= c0`: the exact path's reconstructed shifted value
//!   `middle_min + c / σ` is monotone in `c`, so there is a smallest code
//!   `c0` whose reconstruction is non-negative. `c0` is found by
//!   evaluating the *same f32 expression the exact path uses*, so the
//!   fused path always picks the same side as the exact path — only the
//!   rounding of the final multiply-add differs;
//! * outlier magnitudes collapse to `c · step` with the group's threshold
//!   offset applied per the COO side bit.
//!
//! The resulting numeric contract is *SQNR-bounded, not bit-exact*: fused
//! and exact reconstructions of the same code agree to within a few ULP
//! (`a + c/σ` versus `c · (1/σ) + a'` rounding), and the property tests in
//! `oaken-model` bound the end-to-end attention divergence.

use crate::encoding::{FusedVector, ScaleSet};
use crate::groups::GroupKind;
use crate::quant::UniformQuantizer;
use crate::thresholds::Thresholds;

/// Everything a fused reader needs besides the per-row [`ScaleSet`]:
/// the offline-profiled thresholds of the `(layer, kind)` tensor and the
/// configured bit-widths. One value per stream, valid for every row the
/// stream will ever hold (thresholds are offline, bits are global), so it
/// can be fetched once even from a stream with zero rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedReadParams {
    /// Offline thresholds of the tensor the rows belong to.
    pub thresholds: Thresholds,
    /// Dense middle-group code width (4 in the paper).
    pub middle_bits: u8,
    /// Outlier magnitude code width (4 in the paper).
    pub outlier_bits: u8,
}

/// Per-row decode coefficients: the [`ScaleSet`] and [`FusedReadParams`]
/// folded into the minimal set of constants the quantized-domain kernels
/// read per element. Construction is O(2^middle_bits) (the `c0` scan);
/// every per-element decode after that is a compare plus one fused
/// multiply-add.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowDecode {
    /// Middle reconstruction step `1/σ_mid` (0 for a degenerate range).
    pub mid_step: f32,
    /// Smallest dense code whose exact reconstructed shifted value is
    /// `>= 0`; `max_code + 1` when no code reconstructs non-negative.
    /// `code >= c0` is *exactly* the exact path's `unshift_middle` sign
    /// branch (the reconstruction is monotone in the code).
    pub c0: u32,
    /// `middle_min + T_i_hi`: the base applied to codes `>= c0`.
    pub base_hi: f32,
    /// `middle_min + T_i_lo`: the base applied to codes `< c0`.
    pub base_lo: f32,
    /// Inner-outlier magnitude step `1/σ_inner` (0 when degenerate).
    pub inner_step: f32,
    /// Outer-outlier magnitude step `1/σ_outer` (0 when degenerate).
    pub outer_step: f32,
    /// `T_o_hi`, added to high-side outer magnitudes.
    pub outer_hi: f32,
    /// `T_o_lo`, with the low-side outer magnitude subtracted from it.
    pub outer_lo: f32,
    /// [`middle`](RowDecode::middle) evaluated for every 4-bit dense code:
    /// `middle_lut[c]` is bit-identical to `middle(c)`. SIMD dense lanes
    /// decode by table permute instead of compare + multiply-add.
    pub middle_lut: [f32; 16],
}

impl RowDecode {
    /// Folds one row's scales and the stream's parameters into decode
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics on bit-widths outside `1..=8` (impossible for scales coming
    /// from a validated [`crate::OakenConfig`]).
    pub fn new(scales: &ScaleSet, params: &FusedReadParams) -> Self {
        let q_mid = UniformQuantizer::new(scales.middle_min, scales.middle_max, params.middle_bits)
            .expect("validated middle bit-width");
        let q_inner = UniformQuantizer::new(0.0, scales.inner_mag_max, params.outlier_bits)
            .expect("validated outlier bit-width");
        let q_outer = UniformQuantizer::new(0.0, scales.outer_mag_max, params.outlier_bits)
            .expect("validated outlier bit-width");
        let max_code = q_mid.max_code();
        // The sign branch as a code threshold: evaluate the *exact* path's
        // reconstruction (min + c/σ, the very same f32 expression) per
        // code. Monotonicity in c makes the first non-negative code a
        // threshold; a degenerate σ reconstructs `min` for every code.
        let mut c0 = max_code + 1;
        for c in 0..=max_code {
            if q_mid.dequantize(c) >= 0.0 {
                c0 = c;
                break;
            }
        }
        let t = params.thresholds;
        let inv = |q: &UniformQuantizer| {
            if q.sigma() == 0.0 {
                0.0
            } else {
                1.0 / q.sigma()
            }
        };
        let mut this = Self {
            mid_step: inv(&q_mid),
            c0,
            base_hi: scales.middle_min + t.inner_hi,
            base_lo: scales.middle_min + t.inner_lo,
            inner_step: inv(&q_inner),
            outer_step: inv(&q_outer),
            outer_hi: t.outer_hi,
            outer_lo: t.outer_lo,
            middle_lut: [0.0; 16],
        };
        for c in 0..16u32 {
            this.middle_lut[c as usize] = this.middle(c);
        }
        this
    }

    /// Coefficients for one encoded row.
    pub fn for_row(fv: &FusedVector, params: &FusedReadParams) -> Self {
        Self::new(fv.scales(), params)
    }

    /// Decodes a dense middle code: one compare + one fused multiply-add.
    #[inline]
    pub fn middle(&self, code: u32) -> f32 {
        let base = if code >= self.c0 {
            self.base_hi
        } else {
            self.base_lo
        };
        code as f32 * self.mid_step + base
    }

    /// Decodes an outlier from its COO group/side bits and the 4 magnitude
    /// bits fused into its dense slot.
    #[inline]
    pub fn outlier(&self, group: GroupKind, high_side: bool, code: u32) -> f32 {
        match group {
            GroupKind::Outer => {
                let mag = code as f32 * self.outer_step;
                if high_side {
                    self.outer_hi + mag
                } else {
                    self.outer_lo - mag
                }
            }
            GroupKind::Inner => {
                let mag = code as f32 * self.inner_step;
                if high_side {
                    mag
                } else {
                    -mag
                }
            }
            GroupKind::Middle => unreachable!("COO never stores middle"),
        }
    }
}

/// One precomputed COO correction: adding `delta` to the dense pass's
/// contribution at element `index` turns the middle reconstruction into
/// the outlier reconstruction, i.e.
/// `delta = outlier(group, side, code) - middle(code)` for the entry's
/// bits — the exact expression the fused kernels' patch-up applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierPatch {
    /// Element index within the row.
    pub index: u32,
    /// Outlier-minus-middle reconstruction difference.
    pub delta: f32,
}

/// Append-maintained read-side companion of a fused-vector stream: the
/// per-row decode work the attention kernels would otherwise redo on
/// every call, hoisted to quantization time and laid out contiguously.
///
/// Per appended row this caches
///
/// * its [`RowDecode`] coefficients (`decodes[i]`),
/// * its packed dense nibbles, copied into one flat arena at a fixed
///   `dense_stride` (`dense[i·stride .. (i+1)·stride]`) so the dense walk
///   streams sequential memory instead of chasing one heap allocation per
///   token, and
/// * its COO corrections as ready-to-apply [`OutlierPatch`]es
///   (`patches[patch_offsets[i] .. patch_offsets[i+1]]`, ascending
///   index) so the patch-up never re-parses packed COO bytes.
///
/// Everything here is derived metadata — a pure function of the encoded
/// rows and the stream's [`FusedReadParams`] — and is **not** part of the
/// stored KV footprint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EncodedReadPlan {
    decodes: Vec<RowDecode>,
    dense: Vec<u8>,
    dense_stride: usize,
    patches: Vec<OutlierPatch>,
    patch_offsets: Vec<u32>,
}

impl EncodedReadPlan {
    /// An empty plan; the dense stride is adopted from the first pushed
    /// row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows cached so far.
    pub fn rows(&self) -> usize {
        self.decodes.len()
    }

    /// Derives and appends one row's read-side cache entries.
    pub fn push_row(&mut self, fv: &FusedVector, params: &FusedReadParams) {
        if self.patch_offsets.is_empty() {
            self.patch_offsets.push(0);
        }
        let dec = RowDecode::for_row(fv, params);
        let bytes = fv.dense_bytes();
        if self.decodes.is_empty() {
            self.dense_stride = bytes.len();
        }
        assert_eq!(
            bytes.len(),
            self.dense_stride,
            "all rows of one stream share a dense width"
        );
        self.dense.extend_from_slice(bytes);
        for e in fv.outliers() {
            let code = u32::from(fv.dense_code(e.index));
            self.patches.push(OutlierPatch {
                index: e.index as u32,
                delta: dec.outlier(e.group, e.high_side, code) - dec.middle(code),
            });
        }
        self.patch_offsets.push(self.patches.len() as u32);
        self.decodes.push(dec);
    }

    /// Drops all cached rows (the stream-reset companion).
    pub fn clear(&mut self) {
        self.decodes.clear();
        self.dense.clear();
        self.dense_stride = 0;
        self.patches.clear();
        self.patch_offsets.clear();
    }

    /// The per-row decode coefficient table.
    pub fn decodes(&self) -> &[RowDecode] {
        &self.decodes
    }

    /// Row `i`'s packed dense nibbles (element `j` in nibble `j`, low
    /// nibble first — the [`FusedVector::dense_bytes`] layout).
    pub fn dense_row(&self, i: usize) -> &[u8] {
        &self.dense[i * self.dense_stride..(i + 1) * self.dense_stride]
    }

    /// Bytes per row in the dense arena.
    pub fn dense_stride(&self) -> usize {
        self.dense_stride
    }

    /// The flat dense-nibble arena.
    pub fn dense_arena(&self) -> &[u8] {
        &self.dense
    }

    /// Row `i`'s COO corrections, ascending by element index.
    pub fn patches_for(&self, i: usize) -> &[OutlierPatch] {
        let lo = self.patch_offsets[i] as usize;
        let hi = self.patch_offsets[i + 1] as usize;
        &self.patches[lo..hi]
    }
}

/// Decodes a whole encoded row through the fused coefficients, appending
/// `fv.dim()` values to `out`. Reference implementation for the kernel
/// property tests — the attention kernels inline this walk instead of
/// materializing it.
pub fn decode_row_fused_into(fv: &FusedVector, params: &FusedReadParams, out: &mut Vec<f32>) {
    let d = RowDecode::for_row(fv, params);
    let mut outliers = fv.outliers().peekable();
    out.reserve(fv.dim());
    for i in 0..fv.dim() {
        let code = u32::from(fv.dense_code(i));
        let v = match outliers.peek() {
            Some(e) if e.index == i => {
                let e = *e;
                outliers.next();
                d.outlier(e.group, e.high_side, code)
            }
            _ => d.middle(code),
        };
        out.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OakenConfig;
    use crate::pipeline::OakenQuantizer;
    use crate::profiler::OfflineProfiler;
    use crate::thresholds::KvKind;

    fn test_vector(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed)
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 4.0;
                match i % 53 {
                    0 => base * 10.0,
                    1 => base * 0.01,
                    _ => base,
                }
            })
            .collect()
    }

    fn quantizer() -> OakenQuantizer {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 2);
        for s in 0..32 {
            for layer in 0..2 {
                for kind in KvKind::ALL {
                    p.observe(layer, kind, &test_vector(1024, s * 7 + layer as u64));
                }
            }
        }
        OakenQuantizer::new(config, p.try_finish().unwrap())
    }

    #[test]
    fn code_threshold_matches_exact_sign_branch() {
        let q = quantizer();
        let params = q.fused_read_params(0, KvKind::Key).unwrap();
        for seed in 0..24 {
            let x = test_vector(256, seed * 13 + 1);
            let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
            let d = RowDecode::for_row(&fv, &params);
            let q_mid = UniformQuantizer::new(
                fv.scales().middle_min,
                fv.scales().middle_max,
                params.middle_bits,
            )
            .unwrap();
            for c in 0..=q_mid.max_code() {
                let exact_high = q_mid.dequantize(c) >= 0.0;
                assert_eq!(
                    c >= d.c0,
                    exact_high,
                    "code {c} picked a different side than the exact path"
                );
            }
        }
    }

    #[test]
    fn fused_decode_close_to_exact_decode() {
        let q = quantizer();
        for kind in KvKind::ALL {
            let params = q.fused_read_params(1, kind).unwrap();
            for seed in 0..16 {
                let x = test_vector(512, seed * 31 + 7);
                let fv = q.quantize_vector(&x, 1, kind).unwrap();
                let exact = q.dequantize_vector(&fv, 1, kind).unwrap();
                let mut fused = Vec::new();
                decode_row_fused_into(&fv, &params, &mut fused);
                assert_eq!(fused.len(), exact.len());
                let range = exact.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
                for (i, (a, b)) in exact.iter().zip(&fused).enumerate() {
                    assert!(
                        (a - b).abs() <= range * 1e-5,
                        "element {i}: exact {a} fused {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_scales_decode_consistently() {
        // A constant row collapses every group range to a point; the fused
        // decode must still agree with the exact one.
        let q = quantizer();
        let params = q.fused_read_params(0, KvKind::Value).unwrap();
        for value in [0.0f32, 1.25, -1.25] {
            let x = vec![value; 128];
            let fv = q.quantize_vector(&x, 0, KvKind::Value).unwrap();
            let exact = q.dequantize_vector(&fv, 0, KvKind::Value).unwrap();
            let mut fused = Vec::new();
            decode_row_fused_into(&fv, &params, &mut fused);
            for (a, b) in exact.iter().zip(&fused) {
                assert!((a - b).abs() <= 1e-5, "exact {a} fused {b}");
            }
        }
    }

    #[test]
    fn sliced_rows_fused_decode_matches_full_slice() {
        // The fused read path a tensor-parallel rank runs over its
        // channel-sliced vectors must agree bitwise with the same channels
        // of the full row's fused decode: `RowDecode` coefficients depend
        // only on the (shared) scales, and each element decodes from its
        // own code and outlier entry.
        let q = quantizer();
        let params = q.fused_read_params(0, KvKind::Key).unwrap();
        for seed in 0..12 {
            let x = test_vector(384, seed * 11 + 5);
            let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
            let mut full = Vec::new();
            decode_row_fused_into(&fv, &params, &mut full);
            for range in [0..80, 80..208, 208..384] {
                let s = fv.slice_channels(range.clone()).unwrap();
                let mut got = Vec::new();
                decode_row_fused_into(&s, &params, &mut got);
                for (j, (a, b)) in got.iter().zip(&full[range.clone()]).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "channel {j} of slice {range:?} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn params_are_row_independent() {
        let q = quantizer();
        let a = q.fused_read_params(0, KvKind::Key).unwrap();
        let b = q.fused_read_params(0, KvKind::Key).unwrap();
        assert_eq!(a, b);
        assert!(q.fused_read_params(9, KvKind::Key).is_err());
    }
}

//! The [`KvQuantizer`] abstraction shared by Oaken and all baseline
//! reimplementations, the [`KvRowStream`] incremental append interface that
//! the serving-path KV cache drives, plus the [`OnlineCost`] descriptor that
//! the performance simulator uses to charge each method's runtime overhead.

use crate::encoding::FusedVector;
use crate::kernel::{EncodedReadPlan, FusedReadParams};
use crate::thresholds::KvKind;

/// Runtime-cost descriptor of a KV quantization method, consumed by the
/// `oaken-accel` performance simulator.
///
/// The paper's central performance argument (§3.3, §6.2) is that methods
/// with low *effective bitwidth* can still lose end-to-end because their
/// online machinery — topK sorting, channel reordering, mixed-precision
/// scatter/gather — costs more than the bandwidth it saves. This struct
/// captures exactly those axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineCost {
    /// Arithmetic operations per element on the quantization (write) path,
    /// excluding any sorting term.
    pub quant_flops_per_elem: f64,
    /// Arithmetic operations per element on the dequantization (read) path.
    pub dequant_flops_per_elem: f64,
    /// Whether the method requires an online `O(n log n)` sort/topK per
    /// quantized vector (KVQuant-style outlier detection).
    pub sort_nlogn: bool,
    /// Whether the method performs online channel reordering (QServe, Atom,
    /// Tender), charged as one gather per element.
    pub channel_reorder: bool,
    /// Whether mixed-precision (FP16 sparse + INT4 dense) compute paths are
    /// required, which serializes GPU warps; ≥ 1.0 multiplier applied to
    /// quant/dequant time when executed on a GPU.
    pub gpu_divergence_penalty: f64,
}

impl OnlineCost {
    /// A zero-overhead placeholder (used by the FP16 no-quantization
    /// reference).
    pub fn free() -> Self {
        Self {
            quant_flops_per_elem: 0.0,
            dequant_flops_per_elem: 0.0,
            sort_nlogn: false,
            channel_reorder: false,
            gpu_divergence_penalty: 1.0,
        }
    }

    /// Total quantization-side operations for an `n`-element vector,
    /// including the sorting and reordering terms.
    pub fn quant_ops(&self, n: usize) -> f64 {
        let n_f = n as f64;
        let mut ops = self.quant_flops_per_elem * n_f;
        if self.sort_nlogn {
            ops += n_f * n_f.max(2.0).log2();
        }
        if self.channel_reorder {
            ops += n_f;
        }
        ops
    }

    /// Total dequantization-side operations for an `n`-element vector.
    pub fn dequant_ops(&self, n: usize) -> f64 {
        self.dequant_flops_per_elem * n as f64
    }
}

impl Default for OnlineCost {
    fn default() -> Self {
        Self::free()
    }
}

/// An incremental, append-only stream of quantized KV rows for one
/// `(layer, kind)` tensor — the abstraction the serving-path cache drives
/// once per generated token.
///
/// Contract:
///
/// * [`append_row`](KvRowStream::append_row) consumes one `d`-wide token
///   vector and leaves `view` holding exactly `rows() × d` dequantized
///   values afterwards. The same `view` buffer must be passed on every
///   call; the stream owns its contents between appends.
/// * After the stream's **calibration warm-up** (if the method has one —
///   e.g. reorder-based baselines freeze their channel permutation after
///   `calib_rows` tokens), an append only *extends* `view`: rows already
///   materialized are never rewritten, so appends are O(d) and the
///   attention read path is allocation- and recompute-free.
/// * During warm-up an append may rewrite the whole view (the prefix is at
///   most a few calibration rows, so the total extra work is O(1) rows).
///
/// Streams must replicate the batch [`KvQuantizer::roundtrip_matrix`]
/// semantics bit-exactly for any prefix at least as long as the warm-up;
/// the property tests in `oaken-model` enforce this across random append
/// schedules.
pub trait KvRowStream: Send {
    /// Quantizes and immediately dequantizes the next token row, appending
    /// the `d` reconstructed values to `view` (rewriting earlier rows only
    /// during calibration warm-up).
    fn append_row(&mut self, row: &[f32], view: &mut Vec<f32>);

    /// Number of rows appended so far.
    fn rows(&self) -> usize;

    /// Exact encoded payload bytes held by the stream, when the method
    /// tracks real storage (Oaken's fused vectors); `None` means the cache
    /// should fall back to the nominal [`KvQuantizer::effective_bits`]
    /// estimate.
    fn payload_bytes(&self) -> Option<usize> {
        None
    }

    /// Clears all appended rows so the stream slot can be handed to a new
    /// sequence, **retaining any frozen calibration state** (channel
    /// orders, smoothing scales, group quantizers). This is the
    /// multi-sequence serving contract: calibration is per-model (offline
    /// or frozen after warm-up) and shared across requests, while row
    /// history is per-sequence. Methods without calibration state become
    /// indistinguishable from a fresh stream after `reset`.
    fn reset(&mut self);

    /// `(dense_bytes, sparse_bytes)` of the most recently appended row's
    /// encoded payload, when the method tracks real storage: the dense
    /// component (packed codes + scales, fixed-size per token) and the
    /// variable COO outlier component. The paged KV pool uses this to lay
    /// rows into the MMU's dense/sparse page streams at their *actual*
    /// stored sizes. `None` means the caller should fall back to the
    /// nominal [`KvQuantizer::effective_bits`] estimate (dense only).
    fn last_row_payload(&self) -> Option<(usize, usize)> {
        None
    }

    // ------------------------------------------------------------------
    // Encoded (quantized-domain) read path — opt-in per method.
    //
    // Streams whose canonical state is the fused encoding can let the
    // attention kernels read rows *without* a dequantized f32 view ever
    // existing. All five methods default to "not supported" so every
    // baseline keeps working unchanged; a caller must check
    // `append_row_encoded`'s return and fall back to `append_row`.
    // ------------------------------------------------------------------

    /// The encoded rows held by the stream, when the method stores fused
    /// vectors — the representation the quantized-domain attention kernels
    /// read directly. `None` means the method has no encoded form and
    /// readers must use the dequantized view.
    fn encoded_rows(&self) -> Option<&[FusedVector]> {
        None
    }

    /// Quantizes and appends the next token row **without materializing
    /// its dequantized image** — the memory half of the fused-kernel win.
    /// Returns `false` (and appends nothing) when the method cannot skip
    /// the view; the caller must then use
    /// [`append_row`](KvRowStream::append_row) instead.
    fn append_row_encoded(&mut self, row: &[f32]) -> bool {
        let _ = row;
        false
    }

    /// The row-independent decode parameters of this stream's tensor, when
    /// the encoded read path is supported. Valid before any row is
    /// appended (thresholds are offline, bit-widths are global).
    fn fused_read_params(&self) -> Option<FusedReadParams> {
        None
    }

    /// The read-side cache maintained alongside the encoded rows — per-row
    /// decode coefficients, a flat dense-nibble arena, and precomputed COO
    /// patches (see [`EncodedReadPlan`]). Streams that keep this plan make
    /// the fused kernels' per-row decode work O(1) amortized per appended
    /// row instead of redone on every attention call. `None` sends readers
    /// to the rebuild path.
    fn read_plan(&self) -> Option<&EncodedReadPlan> {
        None
    }

    /// Appends already-encoded rows (a sealed prefix block being adopted
    /// from the trie) to the stream's encoded state. Returns `false` when
    /// the method has no encoded form.
    fn adopt_encoded_rows(&mut self, rows: &[FusedVector]) -> bool {
        let _ = rows;
        false
    }

    /// Dequantizes rows `start..end` of the encoded state, appending
    /// `(end - start) × d` values to `out` — the exact-path escape hatch
    /// for a stream populated through
    /// [`append_row_encoded`](KvRowStream::append_row_encoded) (block
    /// sealing, debug bit-compares, lazy view rebuilds). Bit-identical to
    /// the view `append_row` would have produced. Returns `false` when
    /// unsupported.
    fn decode_rows_into(&self, start: usize, end: usize, out: &mut Vec<f32>) -> bool {
        let _ = (start, end, out);
        false
    }
}

/// A KV-cache quantization method operating on `[rows × d]` row-major
/// matrices (rows = tokens, columns = channels).
///
/// The matrix-level API accommodates both per-token methods (Oaken, which
/// processes each row independently and streams) and per-channel methods
/// (KIVI/KVQuant keys, which need column statistics). Token-granular
/// methods additionally expose a [`KvRowStream`] through
/// [`row_stream`](KvQuantizer::row_stream) so the serving cache can append
/// in O(d) instead of re-quantizing the whole prefix per token.
///
/// Implementors must be `Send + Sync` so evaluation sweeps can fan out
/// across threads.
pub trait KvQuantizer: Send + Sync {
    /// Short stable identifier used in reports ("oaken", "kivi", ...).
    fn name(&self) -> &'static str;

    /// Quantizes and immediately dequantizes a `[rows × d]` matrix,
    /// returning the lossy reconstruction. `layer` and `kind` give
    /// profile-aware methods (Oaken, KVQuant) their context; data-free
    /// methods ignore them.
    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        layer: usize,
        kind: KvKind,
    ) -> Vec<f32>;

    /// Nominal stored bits per element for a `[rows × d]` matrix (scale and
    /// index overheads amortized in).
    fn effective_bits(&self, rows: usize, d: usize) -> f64;

    /// Runtime-cost descriptor for the performance simulator.
    fn online_cost(&self) -> OnlineCost;

    /// Opens an incremental row stream for one `(layer, kind)` tensor of
    /// width `d`, or `None` when the method needs tensor-level statistics
    /// (per-channel scales, whole-tensor topK) and the cache must fall back
    /// to full re-quantization on read.
    ///
    /// The default is `None`: correctness first, with the streaming fast
    /// path as an opt-in per method.
    fn row_stream(&self, d: usize, layer: usize, kind: KvKind) -> Option<Box<dyn KvRowStream>> {
        let _ = (d, layer, kind);
        None
    }

    /// Whether a token row's encoded payload (and its dequantized image)
    /// depends **only on the row itself** — never on which rows preceded
    /// it, which sequence produced it, or what a stream saw before.
    ///
    /// This is the soundness gate for cross-sequence prefix sharing:
    /// identical prompt prefixes produce bit-identical quantized pages
    /// exactly when this holds, so a paged pool may deduplicate them.
    /// True for Oaken (all state is offline-profiled thresholds) and
    /// plain FP16/exact storage; **false** for calibrate-then-freeze
    /// baselines (Atom, QServe, Tender — encoding depends on whichever
    /// rows warmed the stream up) and for per-channel/whole-tensor
    /// methods (KIVI, KVQuant — scales span the prefix).
    ///
    /// The default is `false`: sharing is an opt-in guarantee, never an
    /// assumption.
    fn prefix_deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_cost_is_zero() {
        let c = OnlineCost::free();
        assert_eq!(c.quant_ops(1024), 0.0);
        assert_eq!(c.dequant_ops(1024), 0.0);
        assert_eq!(c.gpu_divergence_penalty, 1.0);
    }

    #[test]
    fn sort_term_is_nlogn() {
        let c = OnlineCost {
            sort_nlogn: true,
            ..OnlineCost::free()
        };
        let n = 4096usize;
        let expected = n as f64 * (n as f64).log2();
        assert!((c.quant_ops(n) - expected).abs() < 1.0);
    }

    #[test]
    fn reorder_term_is_linear() {
        let c = OnlineCost {
            channel_reorder: true,
            ..OnlineCost::free()
        };
        assert_eq!(c.quant_ops(100), 100.0);
    }

    #[test]
    fn flop_terms_accumulate() {
        let c = OnlineCost {
            quant_flops_per_elem: 3.0,
            dequant_flops_per_elem: 2.0,
            ..OnlineCost::free()
        };
        assert_eq!(c.quant_ops(10), 30.0);
        assert_eq!(c.dequant_ops(10), 20.0);
    }
}

//! Fused dense-and-sparse encoding (paper §4.5).
//!
//! The quantized vector is stored as:
//!
//! * a **dense nibble matrix** — one 4-bit code per element, two codes per
//!   byte. Middle (inlier) elements store their 4-bit group-shift code;
//!   positions that belong to outliers hold the outlier's 4 magnitude bits
//!   ("fused" into the slot that a naive dense-and-sparse scheme would have
//!   zeroed and wasted);
//! * a **sparse COO stream** — one byte per outlier: 6 offset bits locating
//!   the outlier inside its 64-element block, 1 group bit (inner/outer), and
//!   1 sign/side bit;
//! * **per-block outlier counts** — the information the MMU's sparse
//!   management table keeps as per-page transfer sizes (§5.2); it delimits
//!   which COO bytes belong to which block;
//! * a [`ScaleSet`] of four per-vector scale values (accounted as FP16).
//!
//! Compared to the 23 bits/outlier of FP16 dense-and-sparse schemes
//! (16 value + 6 index + 1 group), fusing cuts each outlier to 8 *extra*
//! bits while keeping every structure byte-aligned.

use crate::error::OakenError;
use crate::groups::GroupKind;

/// Per-vector quantization scales, computed online from group min/max.
///
/// Stored as four FP16 values in hardware; we keep f32 in memory and account
/// 64 bits in all capacity arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScaleSet {
    /// Minimum of the *shifted* middle-group values.
    pub middle_min: f32,
    /// Maximum of the *shifted* middle-group values.
    pub middle_max: f32,
    /// Maximum magnitude of the inner group (range is `[0, inner_mag_max]`).
    pub inner_mag_max: f32,
    /// Maximum shifted magnitude of the outer group.
    pub outer_mag_max: f32,
}

impl ScaleSet {
    /// Bits of storage the scale metadata occupies per vector (4 × FP16).
    pub const STORAGE_BITS: u32 = 64;
}

/// A decoded COO entry (one outlier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CooEntry {
    /// Absolute element index within the vector.
    pub index: usize,
    /// Inner or outer group (`GroupKind::Middle` never appears here).
    pub group: GroupKind,
    /// Side/sign bit: outer → `x > T_o_hi`; inner → `x >= 0`.
    pub high_side: bool,
}

impl CooEntry {
    /// Packs the entry into its 8-bit wire format given its block-local
    /// offset: `[offset:6][group:1][sign:1]`.
    pub fn pack(offset_in_block: u8, group: GroupKind, high_side: bool) -> u8 {
        debug_assert!(offset_in_block < 64);
        let g = match group {
            GroupKind::Outer => 1u8,
            GroupKind::Inner => 0u8,
            GroupKind::Middle => unreachable!("middle values are dense, not COO"),
        };
        (offset_in_block << 2) | (g << 1) | u8::from(high_side)
    }

    /// Unpacks the 8-bit wire format. `block` supplies the 64-element block
    /// the entry belongs to (delimited by the per-block counts).
    pub fn unpack(byte: u8, block: usize, block_size: usize) -> CooEntry {
        let offset = usize::from(byte >> 2);
        let group = if (byte >> 1) & 1 == 1 {
            GroupKind::Outer
        } else {
            GroupKind::Inner
        };
        CooEntry {
            index: block * block_size + offset,
            group,
            high_side: byte & 1 == 1,
        }
    }
}

/// A fused dense-and-sparse encoded vector: the unit the quantization engine
/// writes to memory and the MMU lays out in pages.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedVector {
    dim: usize,
    block_size: usize,
    /// Packed 4-bit codes, element `i` in nibble `i` (low nibble first).
    dense: Vec<u8>,
    /// Packed COO entries ordered by ascending element index.
    sparse: Vec<u8>,
    /// Outliers per 64-element block; the sparse management table's
    /// transfer-size information.
    block_counts: Vec<u8>,
    /// Per-vector scales.
    scales: ScaleSet,
}

impl FusedVector {
    /// Builds an encoded vector from its parts.
    ///
    /// `dense_codes` must contain one 4-bit code per element; `outliers`
    /// must be sorted by ascending index and within `0..dim`.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::CorruptEncoding`] if `dense_codes.len() != dim`,
    /// any code exceeds 4 bits, outliers are unsorted/duplicated, or an
    /// outlier index is out of range.
    pub fn from_parts(
        dim: usize,
        block_size: usize,
        dense_codes: &[u8],
        outliers: &[CooEntry],
        scales: ScaleSet,
    ) -> Result<Self, OakenError> {
        if dense_codes.len() != dim {
            return Err(OakenError::CorruptEncoding {
                detail: format!("{} dense codes for dimension {dim}", dense_codes.len()),
            });
        }
        if dense_codes.iter().any(|&c| c > 0xF) {
            return Err(OakenError::CorruptEncoding {
                detail: "dense code exceeds 4 bits".to_owned(),
            });
        }
        let num_blocks = dim.div_ceil(block_size);
        let mut dense = vec![0u8; dim.div_ceil(2)];
        for (i, &code) in dense_codes.iter().enumerate() {
            if i % 2 == 0 {
                dense[i / 2] |= code;
            } else {
                dense[i / 2] |= code << 4;
            }
        }
        let mut sparse = Vec::with_capacity(outliers.len());
        let mut block_counts = vec![0u8; num_blocks];
        let mut prev: Option<usize> = None;
        for entry in outliers {
            if entry.index >= dim {
                return Err(OakenError::CorruptEncoding {
                    detail: format!("outlier index {} out of range {dim}", entry.index),
                });
            }
            if let Some(p) = prev {
                if entry.index <= p {
                    return Err(OakenError::CorruptEncoding {
                        detail: "outlier indices must be strictly increasing".to_owned(),
                    });
                }
            }
            prev = Some(entry.index);
            let block = entry.index / block_size;
            let offset = (entry.index % block_size) as u8;
            sparse.push(CooEntry::pack(offset, entry.group, entry.high_side));
            block_counts[block] += 1;
        }
        Ok(Self {
            dim,
            block_size,
            dense,
            sparse,
            block_counts,
            scales,
        })
    }

    /// Vector dimension (element count).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// COO block size (64 in the paper's encoding).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The per-vector scales.
    pub fn scales(&self) -> &ScaleSet {
        &self.scales
    }

    /// Number of outliers in the sparse stream.
    pub fn num_outliers(&self) -> usize {
        self.sparse.len()
    }

    /// Reads the 4-bit dense code of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn dense_code(&self, i: usize) -> u8 {
        assert!(i < self.dim, "element {i} out of range {}", self.dim);
        let byte = self.dense[i / 2];
        if i.is_multiple_of(2) {
            byte & 0xF
        } else {
            byte >> 4
        }
    }

    /// The raw packed dense nibble buffer.
    pub fn dense_bytes(&self) -> &[u8] {
        &self.dense
    }

    /// The raw packed COO buffer.
    pub fn sparse_bytes(&self) -> &[u8] {
        &self.sparse
    }

    /// Per-block outlier counts (the sparse table's transfer sizes).
    pub fn block_counts(&self) -> &[u8] {
        &self.block_counts
    }

    /// Streams the COO entries in ascending index order without allocating,
    /// using the per-block counts to attribute bytes to blocks — exactly the
    /// zero-insert walk the dequantization engine performs (§5.2 "outlier
    /// dequantizer"). This is the decode hot path: the streaming
    /// dequantizer peeks it once per element.
    pub fn outliers(&self) -> OutlierIter<'_> {
        OutlierIter {
            fv: self,
            cursor: 0,
            block: 0,
            left_in_block: self.block_counts.first().copied().unwrap_or(0),
        }
    }

    /// Decodes the COO stream into a fresh `Vec` (allocating convenience
    /// wrapper over [`FusedVector::outliers`]).
    pub fn decode_outliers(&self) -> Vec<CooEntry> {
        self.outliers().collect()
    }

    /// Bytes of KV payload: dense nibbles + sparse COO entries + FP16 scales.
    pub fn payload_bytes(&self) -> usize {
        self.dense.len() + self.sparse.len() + (ScaleSet::STORAGE_BITS as usize / 8)
    }

    /// Bytes of MMU-side metadata (per-block transfer sizes). Reported
    /// separately because the paper accounts management tables to the MMU,
    /// not to the effective bitwidth.
    pub fn table_bytes(&self) -> usize {
        self.block_counts.len()
    }

    /// Mean stored bits per element, the paper's "effective bitwidth":
    /// `(dense + sparse + scales) × 8 / dim`.
    pub fn effective_bits(&self) -> f64 {
        self.payload_bytes() as f64 * 8.0 / self.dim.max(1) as f64
    }

    /// Extracts the encoding of a contiguous channel range as a standalone
    /// vector of dimension `range.len()` — the unit a tensor-parallel rank
    /// stores for its KV-head slice.
    ///
    /// Dense codes are positional and copy over directly; COO outliers are
    /// rebased to the new origin and re-bucketed into blocks (the range
    /// need not be block-aligned); the [`ScaleSet`] travels unchanged.
    /// Because Oaken's scales are whole-row min/max reductions and every
    /// element decodes as a pure function of its own code, outlier entry,
    /// and the shared scales, dequantizing the slice is **bit-identical**
    /// to slicing the full dequantization — quantize once, shard the
    /// encoding, and every rank reconstructs the same values the unsharded
    /// cache would.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::CorruptEncoding`] if the range exceeds the
    /// vector's dimension.
    pub fn slice_channels(&self, range: std::ops::Range<usize>) -> Result<Self, OakenError> {
        if range.start > range.end || range.end > self.dim {
            return Err(OakenError::CorruptEncoding {
                detail: format!(
                    "channel slice {}..{} out of range for dimension {}",
                    range.start, range.end, self.dim
                ),
            });
        }
        let codes: Vec<u8> = range.clone().map(|i| self.dense_code(i)).collect();
        let outliers: Vec<CooEntry> = self
            .outliers()
            .skip_while(|e| e.index < range.start)
            .take_while(|e| e.index < range.end)
            .map(|mut e| {
                e.index -= range.start;
                e
            })
            .collect();
        Self::from_parts(range.len(), self.block_size, &codes, &outliers, self.scales)
    }
}

/// Allocation-free iterator over a [`FusedVector`]'s COO entries in
/// ascending index order. Created by [`FusedVector::outliers`].
#[derive(Debug, Clone)]
pub struct OutlierIter<'a> {
    fv: &'a FusedVector,
    /// Next byte to read from the sparse stream.
    cursor: usize,
    /// Block the next entry belongs to.
    block: usize,
    /// Entries remaining in the current block.
    left_in_block: u8,
}

impl Iterator for OutlierIter<'_> {
    type Item = CooEntry;

    fn next(&mut self) -> Option<CooEntry> {
        while self.left_in_block == 0 {
            self.block += 1;
            self.left_in_block = *self.fv.block_counts.get(self.block)?;
        }
        let byte = self.fv.sparse[self.cursor];
        self.cursor += 1;
        self.left_in_block -= 1;
        Some(CooEntry::unpack(byte, self.block, self.fv.block_size))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.fv.sparse.len() - self.cursor;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OutlierIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(index: usize, group: GroupKind, high: bool) -> CooEntry {
        CooEntry {
            index,
            group,
            high_side: high,
        }
    }

    #[test]
    fn coo_pack_unpack_roundtrip() {
        for offset in [0u8, 1, 17, 63] {
            for group in [GroupKind::Inner, GroupKind::Outer] {
                for high in [false, true] {
                    let b = CooEntry::pack(offset, group, high);
                    let e = CooEntry::unpack(b, 3, 64);
                    assert_eq!(e.index, 3 * 64 + offset as usize);
                    assert_eq!(e.group, group);
                    assert_eq!(e.high_side, high);
                }
            }
        }
    }

    #[test]
    fn from_parts_validates() {
        let scales = ScaleSet::default();
        // Wrong dense length.
        assert!(FusedVector::from_parts(4, 64, &[1, 2, 3], &[], scales).is_err());
        // Code too wide.
        assert!(FusedVector::from_parts(2, 64, &[16, 0], &[], scales).is_err());
        // Out-of-range outlier.
        assert!(FusedVector::from_parts(
            2,
            64,
            &[0, 0],
            &[entry(5, GroupKind::Outer, true)],
            scales
        )
        .is_err());
        // Unsorted outliers.
        assert!(FusedVector::from_parts(
            8,
            64,
            &[0; 8],
            &[
                entry(3, GroupKind::Inner, false),
                entry(1, GroupKind::Outer, true)
            ],
            scales
        )
        .is_err());
    }

    #[test]
    fn dense_nibble_roundtrip() {
        let codes: Vec<u8> = (0..9).map(|i| (i * 3) % 16).collect();
        let fv = FusedVector::from_parts(9, 64, &codes, &[], ScaleSet::default()).unwrap();
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(fv.dense_code(i), c, "element {i}");
        }
        assert_eq!(fv.dense_bytes().len(), 5); // ceil(9/2)
    }

    #[test]
    fn outlier_decode_across_blocks() {
        let dim = 200; // blocks of 64 → 4 blocks
        let codes = vec![0u8; dim];
        let outs = vec![
            entry(0, GroupKind::Inner, true),
            entry(63, GroupKind::Outer, false),
            entry(64, GroupKind::Outer, true),
            entry(130, GroupKind::Inner, false),
            entry(199, GroupKind::Outer, true),
        ];
        let fv = FusedVector::from_parts(dim, 64, &codes, &outs, ScaleSet::default()).unwrap();
        assert_eq!(fv.block_counts(), &[2, 1, 1, 1]);
        let decoded = fv.decode_outliers();
        assert_eq!(decoded, outs);
    }

    #[test]
    fn outlier_iterator_matches_decode_and_reports_len() {
        let dim = 300;
        let codes = vec![0u8; dim];
        let outs: Vec<CooEntry> = [1usize, 63, 64, 65, 190, 299]
            .iter()
            .map(|&i| entry(i, GroupKind::Outer, i % 2 == 0))
            .collect();
        let fv = FusedVector::from_parts(dim, 64, &codes, &outs, ScaleSet::default()).unwrap();
        let it = fv.outliers();
        assert_eq!(it.len(), outs.len());
        assert_eq!(it.collect::<Vec<_>>(), outs);
        // Empty stream iterates to nothing.
        let fv = FusedVector::from_parts(dim, 64, &codes, &[], ScaleSet::default()).unwrap();
        assert_eq!(fv.outliers().count(), 0);
    }

    #[test]
    fn capacity_accounting() {
        let dim = 128;
        let codes = vec![0u8; dim];
        let outs: Vec<CooEntry> = (0..13)
            .map(|i| entry(i * 9, GroupKind::Outer, true))
            .collect();
        let fv = FusedVector::from_parts(dim, 64, &codes, &outs, ScaleSet::default()).unwrap();
        assert_eq!(fv.payload_bytes(), 64 + 13 + 8);
        assert_eq!(fv.table_bytes(), 2);
        // ~10% outliers → effective bits ≈ 4 + 0.8 + 0.5 (scales over 128)
        let eb = fv.effective_bits();
        assert!(eb > 4.7 && eb < 5.4, "{eb}");
    }

    #[test]
    fn empty_vector_is_legal() {
        let fv = FusedVector::from_parts(0, 64, &[], &[], ScaleSet::default()).unwrap();
        assert_eq!(fv.dim(), 0);
        assert_eq!(fv.decode_outliers(), Vec::new());
    }
}

//! Outlier thresholds: the *offline* half of Oaken's hybrid scheme.
//!
//! Four thresholds per (layer, key|value) tensor partition the real line
//! into the three quantization groups of paper Eq. 1:
//!
//! ```text
//!   outer      middle      inner      middle      outer
//! ────────┬───────────┬───────────┬───────────┬────────→ x
//!      outer_lo    inner_lo    inner_hi    outer_hi
//! ```

use crate::error::OakenError;
use serde::{Deserialize, Serialize};

/// Whether a tensor holds attention keys or values.
///
/// The paper profiles keys and values separately because their distributions
/// differ (Figure 6 shows distinct ranges for keys and values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvKind {
    /// Attention keys.
    Key,
    /// Attention values.
    Value,
}

impl KvKind {
    /// Both kinds, for iteration.
    pub const ALL: [KvKind; 2] = [KvKind::Key, KvKind::Value];
}

/// The four group thresholds of Eq. 1: `T_o_lo, T_i_lo, T_i_hi, T_o_hi`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Lower outer threshold `T_o_lo`; values below are outer outliers.
    pub outer_lo: f32,
    /// Lower inner threshold `T_i_lo`.
    pub inner_lo: f32,
    /// Upper inner threshold `T_i_hi`; values in `[inner_lo, inner_hi]` are
    /// inner (near-zero) outliers.
    pub inner_hi: f32,
    /// Upper outer threshold `T_o_hi`; values above are outer outliers.
    pub outer_hi: f32,
}

impl Thresholds {
    /// Creates a threshold set, validating the ordering invariant
    /// `outer_lo <= inner_lo <= inner_hi <= outer_hi`.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::InvalidThresholds`] when the ordering is violated
    /// or any threshold is not finite.
    pub fn new(
        outer_lo: f32,
        inner_lo: f32,
        inner_hi: f32,
        outer_hi: f32,
    ) -> Result<Self, OakenError> {
        let t = Self {
            outer_lo,
            inner_lo,
            inner_hi,
            outer_hi,
        };
        t.validate()?;
        Ok(t)
    }

    /// Checks the ordering invariant.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::InvalidThresholds`] on violation.
    pub fn validate(&self) -> Result<(), OakenError> {
        let vals = [self.outer_lo, self.inner_lo, self.inner_hi, self.outer_hi];
        if vals.iter().any(|v| !v.is_finite()) {
            return Err(OakenError::InvalidThresholds {
                detail: format!("non-finite threshold in {vals:?}"),
            });
        }
        if !(self.outer_lo <= self.inner_lo
            && self.inner_lo <= self.inner_hi
            && self.inner_hi <= self.outer_hi)
        {
            return Err(OakenError::InvalidThresholds {
                detail: format!(
                    "expected outer_lo <= inner_lo <= inner_hi <= outer_hi, got {:?}",
                    vals
                ),
            });
        }
        Ok(())
    }

    /// A permissive threshold set that classifies everything as middle
    /// except exact zeros; useful as a neutral default in tests.
    pub fn wide(limit: f32) -> Self {
        Self {
            outer_lo: -limit,
            inner_lo: 0.0,
            inner_hi: 0.0,
            outer_hi: limit,
        }
    }

    /// Element-wise running average used when averaging per-inference
    /// thresholds during offline profiling (§4.3: "their averages are
    /// computed for each decoder layer").
    pub fn lerp_toward(&self, other: &Thresholds, weight_other: f32) -> Thresholds {
        let w = weight_other;
        let lerp = |a: f32, b: f32| a * (1.0 - w) + b * w;
        Thresholds {
            outer_lo: lerp(self.outer_lo, other.outer_lo),
            inner_lo: lerp(self.inner_lo, other.inner_lo),
            inner_hi: lerp(self.inner_hi, other.inner_hi),
            outer_hi: lerp(self.outer_hi, other.outer_hi),
        }
    }
}

/// Per-layer thresholds for keys and values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerThresholds {
    /// Thresholds for the key cache of this layer.
    pub key: Thresholds,
    /// Thresholds for the value cache of this layer.
    pub value: Thresholds,
}

impl LayerThresholds {
    /// Returns the thresholds for the requested tensor kind.
    pub fn for_kind(&self, kind: KvKind) -> &Thresholds {
        match kind {
            KvKind::Key => &self.key,
            KvKind::Value => &self.value,
        }
    }
}

/// Offline-profiled thresholds for every decoder layer of one model.
///
/// Observation 1 of §4.1: thresholds must be per-model and per-layer.
/// Observation 2: they need *not* be per-input, so this structure is
/// computed once offline and reused for all future requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ModelThresholds {
    layers: Vec<LayerThresholds>,
}

impl ModelThresholds {
    /// Creates a threshold table from per-layer entries.
    pub fn from_layers(layers: Vec<LayerThresholds>) -> Self {
        Self { layers }
    }

    /// Number of profiled layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Looks up thresholds for `(layer, kind)`.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an invalid layer index.
    pub fn get(&self, layer: usize, kind: KvKind) -> Result<&Thresholds, OakenError> {
        self.layers
            .get(layer)
            .map(|lt| lt.for_kind(kind))
            .ok_or(OakenError::LayerOutOfRange {
                layer,
                layers: self.layers.len(),
            })
    }

    /// Iterates over `(layer_index, &LayerThresholds)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &LayerThresholds)> {
        self.layers.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_invariant_enforced() {
        assert!(Thresholds::new(-4.0, -0.1, 0.1, 4.0).is_ok());
        assert!(Thresholds::new(4.0, -0.1, 0.1, -4.0).is_err());
        assert!(Thresholds::new(-4.0, 0.2, 0.1, 4.0).is_err());
        assert!(Thresholds::new(f32::NAN, -0.1, 0.1, 4.0).is_err());
    }

    #[test]
    fn wide_classifies_all_as_valid() {
        let t = Thresholds::wide(100.0);
        assert!(t.validate().is_ok());
        assert_eq!(t.outer_hi, 100.0);
    }

    #[test]
    fn lerp_midpoint() {
        let a = Thresholds::new(-2.0, -0.2, 0.2, 2.0).unwrap();
        let b = Thresholds::new(-4.0, -0.4, 0.4, 4.0).unwrap();
        let m = a.lerp_toward(&b, 0.5);
        assert!((m.outer_lo + 3.0).abs() < 1e-6);
        assert!((m.outer_hi - 3.0).abs() < 1e-6);
    }

    #[test]
    fn model_thresholds_lookup() {
        let lt = LayerThresholds {
            key: Thresholds::wide(1.0),
            value: Thresholds::wide(2.0),
        };
        let mt = ModelThresholds::from_layers(vec![lt; 3]);
        assert_eq!(mt.num_layers(), 3);
        assert_eq!(mt.get(2, KvKind::Value).unwrap().outer_hi, 2.0);
        assert_eq!(mt.get(1, KvKind::Key).unwrap().outer_hi, 1.0);
        assert!(matches!(
            mt.get(3, KvKind::Key),
            Err(OakenError::LayerOutOfRange {
                layer: 3,
                layers: 3
            })
        ));
    }
}

//! Configuration of the hybrid quantizer: group ratios and bit-widths.

use crate::error::OakenError;
use serde::{Deserialize, Serialize};

/// Target fractions of values assigned to the outer / middle / inner groups.
///
/// The paper fixes a global configuration of **4% outer, 90% middle, 6%
/// inner** for all models and datasets (§6.1 "Thresholds"), justified by the
/// observation that the KV distribution is input-independent and the optimal
/// ratio varies only marginally across LLMs. Figure 12(a) sweeps this space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupRatios {
    /// Fraction of large-magnitude outliers (split across both tails).
    pub outer: f64,
    /// Fraction of inliers.
    pub middle: f64,
    /// Fraction of near-zero outliers.
    pub inner: f64,
}

impl GroupRatios {
    /// Creates a ratio set, validating positivity and that it sums to one.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::InvalidRatios`] if any ratio is negative, the
    /// middle ratio is zero, or the ratios do not sum to 1 (±1e-6).
    pub fn new(outer: f64, middle: f64, inner: f64) -> Result<Self, OakenError> {
        let sum = outer + middle + inner;
        if outer < 0.0 || inner < 0.0 || middle <= 0.0 || (sum - 1.0).abs() > 1e-6 {
            return Err(OakenError::InvalidRatios {
                outer,
                middle,
                inner,
            });
        }
        Ok(Self {
            outer,
            middle,
            inner,
        })
    }

    /// The paper's evaluation configuration: 4% / 90% / 6%.
    pub fn paper_default() -> Self {
        Self {
            outer: 0.04,
            middle: 0.90,
            inner: 0.06,
        }
    }

    /// Total outlier fraction (outer + inner), which determines the sparse
    /// storage overhead and therefore the effective bitwidth.
    pub fn outlier_fraction(&self) -> f64 {
        self.outer + self.inner
    }
}

impl Default for GroupRatios {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Bit-widths used by the quantizer.
///
/// Oaken quantizes the middle group to 4 bits and the inner/outer groups to
/// 5 bits (§4.4), where the 5th outlier bit is the sign/side bit stored in
/// the COO entry and the 4 magnitude bits are fused into the dense matrix
/// (§4.5). Table 3 ablates a 4-bit outlier variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitWidths {
    /// Bits for the dense middle-group codes.
    pub middle: u8,
    /// Magnitude bits for outlier codes (sign bit is stored separately in
    /// the COO entry, so the total outlier precision is `outlier_mag + 1`).
    pub outlier_mag: u8,
}

impl BitWidths {
    /// The paper's configuration: 4-bit middle, 5-bit (1+4) outliers.
    pub fn paper_default() -> Self {
        Self {
            middle: 4,
            outlier_mag: 4,
        }
    }

    /// Validates that both widths are in `1..=8`.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::UnsupportedBitWidth`] otherwise.
    pub fn validate(&self) -> Result<(), OakenError> {
        for bits in [self.middle, self.outlier_mag] {
            if bits == 0 || bits > 8 {
                return Err(OakenError::UnsupportedBitWidth { bits });
            }
        }
        Ok(())
    }

    /// Total bits carried per outlier entry in the fused encoding:
    /// 6 index bits + 1 group bit + 1 sign bit (the magnitude rides in the
    /// dense slot that was already paid for).
    pub fn sparse_entry_bits(&self) -> u32 {
        8
    }
}

impl Default for BitWidths {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Complete configuration of the Oaken quantization pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OakenConfig {
    /// Target group ratios (drives offline threshold profiling).
    pub ratios: GroupRatios,
    /// Quantization bit-widths.
    pub bits: BitWidths,
    /// Elements per COO index block; 6 index bits address a 64-element block
    /// (§4.5: "6 bits to indicate the location of each value").
    pub block_size: usize,
}

impl OakenConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates ratio and bit-width validation failures.
    pub fn new(ratios: GroupRatios, bits: BitWidths) -> Result<Self, OakenError> {
        bits.validate()?;
        GroupRatios::new(ratios.outer, ratios.middle, ratios.inner)?;
        Ok(Self {
            ratios,
            bits,
            block_size: 64,
        })
    }

    /// Predicted effective bits per element for dimension `d`, before
    /// observing data: `middle_bits + outlier_fraction × 8 + scales/d`.
    ///
    /// With the paper defaults (10% outliers) and large `d` this evaluates to
    /// ≈ 4.8 bits, matching Table 2's "Effective Bitwidth" row for Oaken.
    pub fn predicted_effective_bits(&self, d: usize) -> f64 {
        let scale_bits = ScaleOverhead::BITS_PER_VECTOR as f64;
        f64::from(self.bits.middle)
            + self.ratios.outlier_fraction() * f64::from(self.bits.sparse_entry_bits())
            + scale_bits / d.max(1) as f64
    }
}

impl Default for OakenConfig {
    fn default() -> Self {
        Self {
            ratios: GroupRatios::paper_default(),
            bits: BitWidths::paper_default(),
            block_size: 64,
        }
    }
}

/// Storage overhead of the per-vector scale metadata.
///
/// Oaken stores four scale values per token vector (middle min/max, inner
/// magnitude, outer magnitude) as FP16, i.e. 64 bits per vector.
pub(crate) struct ScaleOverhead;

impl ScaleOverhead {
    pub(crate) const BITS_PER_VECTOR: u32 = 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        let c = OakenConfig::default();
        assert_eq!(c.ratios.outer, 0.04);
        assert_eq!(c.ratios.middle, 0.90);
        assert_eq!(c.ratios.inner, 0.06);
        assert_eq!(c.bits.middle, 4);
        assert_eq!(c.bits.outlier_mag, 4);
        assert_eq!(c.block_size, 64);
        assert!(OakenConfig::new(c.ratios, c.bits).is_ok());
    }

    #[test]
    fn ratios_must_sum_to_one() {
        assert!(GroupRatios::new(0.1, 0.8, 0.1).is_ok());
        assert!(GroupRatios::new(0.2, 0.9, 0.1).is_err());
        assert!(GroupRatios::new(-0.1, 1.0, 0.1).is_err());
        assert!(GroupRatios::new(0.5, 0.0, 0.5).is_err());
    }

    #[test]
    fn outlier_fraction_adds_tails() {
        let r = GroupRatios::paper_default();
        assert!((r.outlier_fraction() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn bitwidths_validated() {
        assert!(BitWidths {
            middle: 4,
            outlier_mag: 4
        }
        .validate()
        .is_ok());
        assert!(BitWidths {
            middle: 0,
            outlier_mag: 4
        }
        .validate()
        .is_err());
        assert!(BitWidths {
            middle: 4,
            outlier_mag: 9
        }
        .validate()
        .is_err());
    }

    #[test]
    fn effective_bits_match_paper() {
        let c = OakenConfig::default();
        // 4 + 0.10*8 + 64/4096 = 4.8156...
        let eb = c.predicted_effective_bits(4096);
        assert!((eb - 4.8156).abs() < 1e-3, "{eb}");
    }
}

//! Offline outlier-threshold profiling (paper §4.3).
//!
//! The profiler replaces the online topK of prior work with a one-time
//! offline pass: "Oaken performs approximately a hundred offline inferences
//! with sample input prompts to gather distribution information from the
//! KV cache of each decoder layer. The four group thresholds are extracted
//! during the profiling process from the KV cache of each inference run
//! using topK operations, and their averages are computed for each decoder
//! layer."
//!
//! Crucially, the topK runs over the *whole KV cache of a run* (every
//! token vector of the layer), not over individual vectors — the
//! boundaries are stable global quantiles of the layer's value
//! distribution. This implementation pools the observed values per
//! (layer, kind) with uniform reservoir sampling (statistically equivalent
//! to averaging per-run boundaries, and robust for the small proxy
//! dimensions used in the evaluation harness) and extracts the four
//! boundaries from the pool at [`OfflineProfiler::finish`].

use crate::config::OakenConfig;
use crate::error::OakenError;
use crate::thresholds::{KvKind, LayerThresholds, ModelThresholds, Thresholds};
use oaken_tensor::{bottom_k, top_k};

/// Maximum pooled samples per (layer, kind); beyond this, reservoir
/// sampling keeps a uniform subsample.
const RESERVOIR_CAP: usize = 65_536;

/// Per-(layer, kind) value pool with deterministic reservoir sampling.
#[derive(Debug, Clone, Default)]
struct Reservoir {
    values: Vec<f32>,
    seen: u64,
    rng_state: u64,
}

impl Reservoir {
    fn push(&mut self, v: f32) {
        if v.is_nan() {
            return;
        }
        self.seen += 1;
        if self.values.len() < RESERVOIR_CAP {
            self.values.push(v);
            return;
        }
        // Vitter's algorithm R with a deterministic xorshift stream.
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (self.rng_state >> 11) % self.seen;
        if (j as usize) < RESERVOIR_CAP {
            self.values[j as usize] = v;
        }
    }

    fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Collects KV samples per layer offline and produces pooled-quantile
/// thresholds.
///
/// # Example
///
/// ```
/// use oaken_core::{KvKind, OakenConfig, OfflineProfiler};
///
/// let mut p = OfflineProfiler::new(OakenConfig::default(), 2);
/// let sample: Vec<f32> = (0..512).map(|i| (i as f32).sin() * 4.0).collect();
/// for layer in 0..2 {
///     for kind in KvKind::ALL {
///         p.observe(layer, kind, &sample);
///     }
/// }
/// let thresholds = p.finish();
/// assert_eq!(thresholds.num_layers(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct OfflineProfiler {
    config: OakenConfig,
    // pools[layer][0] = key, pools[layer][1] = value
    pools: Vec<[Reservoir; 2]>,
}

impl OfflineProfiler {
    /// Creates a profiler for a model with `num_layers` decoder layers.
    pub fn new(config: OakenConfig, num_layers: usize) -> Self {
        let mut pools = Vec::with_capacity(num_layers);
        for layer in 0..num_layers {
            let mk = |slot: u64| Reservoir {
                rng_state: (layer as u64) << 32 | slot | 1,
                ..Reservoir::default()
            };
            pools.push([mk(0), mk(1)]);
        }
        Self { config, pools }
    }

    /// Number of layers being profiled.
    pub fn num_layers(&self) -> usize {
        self.pools.len()
    }

    /// Observes one KV vector (or a flattened batch of vectors) for
    /// `(layer, kind)`, pooling its values into the layer's distribution
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range — profiling drives the layer index
    /// from the model loop, so this is a programming error rather than a
    /// recoverable condition.
    pub fn observe(&mut self, layer: usize, kind: KvKind, values: &[f32]) {
        assert!(
            layer < self.pools.len(),
            "layer {layer} out of range for {} profiled layers",
            self.pools.len()
        );
        let slot = match kind {
            KvKind::Key => 0,
            KvKind::Value => 1,
        };
        let pool = &mut self.pools[layer][slot];
        for &v in values {
            pool.push(v);
        }
    }

    /// Finalises profiling, extracting the four boundaries from each pooled
    /// distribution.
    ///
    /// Layers (or kinds) that received no samples fall back to wide
    /// thresholds that classify everything as middle — the quantizer then
    /// degrades to plain per-token 4-bit quantization for those layers
    /// rather than failing. Use [`OfflineProfiler::try_finish`] to make
    /// missing data an error instead.
    pub fn finish(self) -> ModelThresholds {
        let config = self.config;
        let layers = self
            .pools
            .iter()
            .map(|pair| LayerThresholds {
                key: pool_thresholds(&pair[0], &config)
                    .unwrap_or_else(|| Thresholds::wide(f32::MAX / 2.0)),
                value: pool_thresholds(&pair[1], &config)
                    .unwrap_or_else(|| Thresholds::wide(f32::MAX / 2.0)),
            })
            .collect();
        ModelThresholds::from_layers(layers)
    }

    /// Like [`OfflineProfiler::finish`] but returns an error if any layer is
    /// missing samples for either keys or values.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::UnprofiledLayer`] naming the first unprofiled
    /// layer.
    pub fn try_finish(self) -> Result<ModelThresholds, OakenError> {
        for (layer, pair) in self.pools.iter().enumerate() {
            if pair[0].is_empty() || pair[1].is_empty() {
                return Err(OakenError::UnprofiledLayer { layer });
            }
        }
        Ok(self.finish())
    }
}

fn pool_thresholds(pool: &Reservoir, config: &OakenConfig) -> Option<Thresholds> {
    if pool.is_empty() {
        return None;
    }
    Some(sample_thresholds(&pool.values, config))
}

/// Extracts the four group boundaries from a pooled sample via topK
/// selection: the outer ratio is split across the two signed tails and the
/// inner boundary is the inner-ratio quantile of |x| around zero.
pub(crate) fn sample_thresholds(values: &[f32], config: &OakenConfig) -> Thresholds {
    let n = values.len();
    let k_tail = ((n as f64 * config.ratios.outer / 2.0).round() as usize).max(1);
    let k_inner = ((n as f64 * config.ratios.inner).round() as usize).max(1);

    // Smallest of the top-k values = the boundary above which the high tail
    // lives; likewise for the low tail.
    let top = top_k(values, k_tail);
    let bottom = bottom_k(values, k_tail);
    let outer_hi = *top.last().unwrap_or(&0.0);
    let outer_lo = *bottom.last().unwrap_or(&0.0);

    let mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
    let inner_mag = *bottom_k(&mags, k_inner).last().unwrap_or(&0.0);
    let mut inner_hi = inner_mag;
    let mut inner_lo = -inner_mag;

    // Clamp to preserve the ordering invariant on adversarial distributions
    // (e.g. all-positive vectors where -|x| quantile < low tail).
    let outer_lo = outer_lo.min(outer_hi);
    inner_lo = inner_lo.clamp(outer_lo, outer_hi);
    inner_hi = inner_hi.clamp(inner_lo, outer_hi);

    Thresholds {
        outer_lo,
        inner_lo,
        inner_hi,
        outer_hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::GroupStats;

    fn gaussian_like(n: usize, seed: u64) -> Vec<f32> {
        // Deterministic heavy-ish tailed values without pulling in rand.
        (0..n)
            .map(|i| {
                let x = ((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33) as f32
                    / (1u64 << 31) as f32
                    - 0.5;
                let base = (x * 12.0).sin() * 2.0 + x * 4.0;
                if i % 97 == 0 {
                    base * 8.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn profiled_ratios_match_targets_on_unseen_data() {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 1);
        for s in 0..50 {
            p.observe(0, KvKind::Key, &gaussian_like(2048, s));
            p.observe(0, KvKind::Value, &gaussian_like(2048, s + 1000));
        }
        let t = p.try_finish().unwrap();
        let key_t = t.get(0, KvKind::Key).unwrap();
        // Evaluate on held-out data.
        let unseen = gaussian_like(4096, 99_999);
        let stats = GroupStats::of(&unseen, key_t);
        let outer_frac = stats.outer as f64 / stats.total() as f64;
        let inner_frac = stats.inner as f64 / stats.total() as f64;
        assert!((outer_frac - 0.04).abs() < 0.03, "outer {outer_frac}");
        assert!((inner_frac - 0.06).abs() < 0.04, "inner {inner_frac}");
    }

    #[test]
    fn pooled_thresholds_isolate_rare_outliers_in_small_vectors() {
        // With d=48 vectors where only ~1 value per vector is an amplified
        // outlier, per-vector topK would put the threshold at the typical
        // row max; the pooled quantile must sit well below the outlier
        // scale so outliers are actually isolated online.
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 1);
        for s in 0..100 {
            let mut v = gaussian_like(192, s);
            // One strong outlier channel per vector (~0.5% of values, well
            // inside the 2% high tail).
            v[5] = 25.0 + (s as f32 % 7.0);
            p.observe(0, KvKind::Key, &v);
            p.observe(0, KvKind::Value, &v);
        }
        let t = p.try_finish().unwrap();
        let key_t = t.get(0, KvKind::Key).unwrap();
        assert!(
            key_t.outer_hi < 20.0,
            "threshold {} must sit below the outlier scale",
            key_t.outer_hi
        );
        // And the outlier is classified as outer on unseen data.
        let mut unseen = gaussian_like(192, 12345);
        unseen[5] = 28.0;
        let stats = GroupStats::of(&unseen, key_t);
        assert!(stats.outer >= 1, "outlier must be isolated: {stats:?}");
    }

    #[test]
    fn ordering_invariant_always_holds() {
        let config = OakenConfig::default();
        // All-positive values: the naive -|x| inner bound would violate
        // ordering without clamping.
        let vals: Vec<f32> = (1..500).map(|i| i as f32 / 10.0).collect();
        let t = sample_thresholds(&vals, &config);
        assert!(t.validate().is_ok(), "{t:?}");
        // All-negative.
        let vals: Vec<f32> = (1..500).map(|i| -(i as f32) / 10.0).collect();
        let t = sample_thresholds(&vals, &config);
        assert!(t.validate().is_ok(), "{t:?}");
        // Constant.
        let t = sample_thresholds(&[2.5; 64], &config);
        assert!(t.validate().is_ok(), "{t:?}");
    }

    #[test]
    fn try_finish_detects_missing_layers() {
        let mut p = OfflineProfiler::new(OakenConfig::default(), 2);
        p.observe(0, KvKind::Key, &[1.0, 2.0, 3.0]);
        p.observe(0, KvKind::Value, &[1.0, 2.0, 3.0]);
        // Layer 1 never observed.
        assert!(matches!(
            p.try_finish(),
            Err(OakenError::UnprofiledLayer { layer: 1 })
        ));
    }

    #[test]
    fn finish_falls_back_to_wide_thresholds() {
        let p = OfflineProfiler::new(OakenConfig::default(), 1);
        let t = p.finish();
        let key_t = t.get(0, KvKind::Key).unwrap();
        assert!(key_t.outer_hi > 1e30);
    }

    #[test]
    fn reservoir_caps_memory_but_keeps_distribution() {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 1);
        // Push far more than the reservoir cap.
        for s in 0..40 {
            p.observe(0, KvKind::Key, &gaussian_like(4096, s));
            p.observe(0, KvKind::Value, &gaussian_like(4096, s));
        }
        let t = p.try_finish().unwrap();
        let key_t = t.get(0, KvKind::Key).unwrap();
        assert!(key_t.validate().is_ok());
        // Quantiles of the same distribution from a fresh small sample must
        // be in the same ballpark.
        let fresh = sample_thresholds(&gaussian_like(8192, 777), &config);
        assert!((key_t.outer_hi / fresh.outer_hi) > 0.5);
        assert!((key_t.outer_hi / fresh.outer_hi) < 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn observe_panics_on_bad_layer() {
        let mut p = OfflineProfiler::new(OakenConfig::default(), 1);
        p.observe(5, KvKind::Key, &[1.0]);
    }
}

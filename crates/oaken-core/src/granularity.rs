//! Threshold-granularity extension: per-head thresholds.
//!
//! The paper profiles thresholds **per model and per decoder layer**
//! (Observation 1). Since outlier channels are head-aligned in practice
//! (each KV head owns a contiguous channel slice), a natural refinement is
//! one threshold set per *(layer, head)*. This module implements that
//! extension so the ablation bench can quantify what the extra table
//! storage buys:
//!
//! * per-layer: 4 thresholds × 2 (K/V) × layers — the paper's choice;
//! * per-head: ×`num_kv_heads` more table entries, slightly tighter
//!   grouping where heads differ in scale.
//!
//! The online datapath is unchanged: the decomposer just indexes its
//! threshold registers by head as well as layer.

use crate::config::OakenConfig;
use crate::error::OakenError;
use crate::pipeline::OakenQuantizer;
use crate::profiler::OfflineProfiler;
use crate::thresholds::{KvKind, ModelThresholds};
use crate::traits::{KvQuantizer, OnlineCost};

/// Per-(layer, head) thresholds: an [`OakenQuantizer`] per head slice.
#[derive(Debug, Clone)]
pub struct PerHeadQuantizer {
    config: OakenConfig,
    /// `heads[h]` holds the thresholds for head `h` across all layers.
    heads: Vec<ModelThresholds>,
    head_dim: usize,
}

/// Profiles per-head thresholds from per-(layer, head) observations.
#[derive(Debug)]
pub struct PerHeadProfiler {
    config: OakenConfig,
    profilers: Vec<OfflineProfiler>,
    head_dim: usize,
}

impl PerHeadProfiler {
    /// Creates a profiler for `num_layers` layers × `num_heads` KV heads of
    /// `head_dim` channels each.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads` or `head_dim` is zero.
    pub fn new(config: OakenConfig, num_layers: usize, num_heads: usize, head_dim: usize) -> Self {
        assert!(num_heads > 0, "need at least one head");
        assert!(head_dim > 0, "head dimension must be positive");
        Self {
            profilers: (0..num_heads)
                .map(|_| OfflineProfiler::new(config.clone(), num_layers))
                .collect(),
            config,
            head_dim,
        }
    }

    /// Observes a full KV vector, splitting it into per-head slices.
    ///
    /// # Panics
    ///
    /// Panics if the vector length is not `num_heads × head_dim`.
    pub fn observe(&mut self, layer: usize, kind: KvKind, values: &[f32]) {
        assert_eq!(
            values.len(),
            self.profilers.len() * self.head_dim,
            "vector width must equal num_heads × head_dim"
        );
        for (h, chunk) in values.chunks(self.head_dim).enumerate() {
            self.profilers[h].observe(layer, kind, chunk);
        }
    }

    /// Finalises into a per-head quantizer.
    pub fn finish(self) -> PerHeadQuantizer {
        PerHeadQuantizer {
            heads: self
                .profilers
                .into_iter()
                .map(OfflineProfiler::finish)
                .collect(),
            config: self.config,
            head_dim: self.head_dim,
        }
    }
}

impl PerHeadQuantizer {
    /// Number of KV heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Per-head channel count.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Threshold-table entries this granularity stores (vs `layers × 2`
    /// sets for the per-layer baseline) — the hardware register cost of the
    /// refinement.
    pub fn table_entries(&self) -> usize {
        self.heads.len() * self.heads.first().map_or(0, ModelThresholds::num_layers) * 2
    }

    /// Quantize-dequantizes one full KV vector, each head slice through its
    /// own thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::DimensionMismatch`] if the vector width is not
    /// `num_heads × head_dim`, or propagates per-head quantization errors.
    pub fn roundtrip_vector(
        &self,
        x: &[f32],
        layer: usize,
        kind: KvKind,
    ) -> Result<Vec<f32>, OakenError> {
        if x.len() != self.heads.len() * self.head_dim {
            return Err(OakenError::DimensionMismatch {
                expected: self.heads.len() * self.head_dim,
                actual: x.len(),
            });
        }
        let mut out = Vec::with_capacity(x.len());
        for (h, chunk) in x.chunks(self.head_dim).enumerate() {
            let q = OakenQuantizer::new(self.config.clone(), self.heads[h].clone());
            let fv = q.quantize_vector(chunk, layer, kind)?;
            out.extend(q.dequantize_vector(&fv, layer, kind)?);
        }
        Ok(out)
    }
}

impl KvQuantizer for PerHeadQuantizer {
    fn name(&self) -> &'static str {
        "oaken-per-head"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        layer: usize,
        kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let mut out = Vec::with_capacity(data.len());
        for r in 0..rows {
            out.extend(
                self.roundtrip_vector(&data[r * d..(r + 1) * d], layer, kind)
                    .expect("matrix width matches head layout"),
            );
        }
        out
    }

    fn effective_bits(&self, _rows: usize, d: usize) -> f64 {
        // Same payload as per-layer Oaken but the per-vector scale overhead
        // applies per head slice.
        let per_head = self.config.predicted_effective_bits(self.head_dim);
        let _ = d;
        per_head
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 5.0,
            dequant_flops_per_elem: 3.0,
            sort_nlogn: false,
            channel_reorder: false,
            gpu_divergence_penalty: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Heads with very different scales: head 0 small, head 1 large.
    fn two_scale_vector(head_dim: usize, seed: u64) -> Vec<f32> {
        let mut v = Vec::with_capacity(head_dim * 2);
        for i in 0..head_dim * 2 {
            let u = ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed)
                >> 33) as f32
                / (1u64 << 31) as f32
                - 0.5;
            let scale = if i < head_dim { 0.5 } else { 20.0 };
            v.push(u * scale);
        }
        v
    }

    fn profiled(head_dim: usize) -> PerHeadQuantizer {
        let mut p = PerHeadProfiler::new(OakenConfig::default(), 1, 2, head_dim);
        for s in 0..32 {
            p.observe(0, KvKind::Key, &two_scale_vector(head_dim, s));
            p.observe(0, KvKind::Value, &two_scale_vector(head_dim, s));
        }
        p.finish()
    }

    #[test]
    fn per_head_beats_per_layer_on_heterogeneous_heads() {
        let head_dim = 128;
        let per_head = profiled(head_dim);

        // Per-layer baseline profiled on the same data.
        let mut flat = OfflineProfiler::new(OakenConfig::default(), 1);
        for s in 0..32 {
            flat.observe(0, KvKind::Key, &two_scale_vector(head_dim, s));
            flat.observe(0, KvKind::Value, &two_scale_vector(head_dim, s));
        }
        let per_layer = OakenQuantizer::new(OakenConfig::default(), flat.finish());

        let x = two_scale_vector(head_dim, 777);
        let ph = per_head.roundtrip_vector(&x, 0, KvKind::Key).unwrap();
        let fv = per_layer.quantize_vector(&x, 0, KvKind::Key).unwrap();
        let pl = per_layer.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
        let mse = |y: &[f32]| x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f32>();
        assert!(
            mse(&ph) < mse(&pl),
            "per-head {} should beat per-layer {}",
            mse(&ph),
            mse(&pl)
        );
    }

    #[test]
    fn table_cost_scales_with_heads() {
        let q = profiled(16);
        assert_eq!(q.num_heads(), 2);
        assert_eq!(q.table_entries(), 2 * 2);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let q = profiled(16);
        assert!(matches!(
            q.roundtrip_vector(&[0.0; 31], 0, KvKind::Key),
            Err(OakenError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn trait_matrix_path_works() {
        let q = profiled(16);
        let x: Vec<f32> = two_scale_vector(16, 5);
        let out = q.roundtrip_matrix(&x, 1, 32, 0, KvKind::Value);
        assert_eq!(out.len(), 32);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}

//! Group-shift quantization (paper §4.4, Eq. 4).
//!
//! Directly quantizing the outer group fails because its values span a wide
//! magnitude range. Group-shift subtracts the *offline-profiled threshold*
//! of the group's side from each value, concentrating every group into a
//! narrow band near zero so 4/5-bit uniform quantization suffices — without
//! requiring any information beyond the four thresholds already available
//! from offline profiling.
//!
//! Side conventions in this implementation:
//!
//! * **middle** values keep a *signed* shift (`x − T_i_hi` above, `x − T_i_lo`
//!   below). The side is recovered from the sign of the reconstructed shifted
//!   value, so no side bit is stored for dense inliers.
//! * **outer** and **inner** values store an explicit side/sign bit in their
//!   COO entry (§4.5) plus a non-negative *magnitude*; the shifted magnitude
//!   is `x − T_o_hi` (high side), `T_o_lo − x` (low side), or `|x|` (inner).

use crate::groups::{classify, GroupKind};
use crate::thresholds::Thresholds;

/// A value after classification and group-shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedValue {
    /// Which quantization group the value belongs to.
    pub group: GroupKind,
    /// For outer: `x > T_o_hi`; for inner: `x >= 0`; for middle: `x > T_i_hi`.
    pub high_side: bool,
    /// The shifted value. Signed for middle; non-negative magnitude for
    /// outer and inner.
    pub shifted: f32,
}

/// Classifies and shifts one value per Eq. 4.
#[inline]
pub fn shift(x: f32, t: &Thresholds) -> ShiftedValue {
    let group = classify(x, t);
    match group {
        GroupKind::Outer => {
            let high_side = x > t.outer_hi;
            let shifted = if high_side {
                x - t.outer_hi
            } else {
                t.outer_lo - x
            };
            ShiftedValue {
                group,
                high_side,
                shifted,
            }
        }
        GroupKind::Middle => {
            let high_side = x > t.inner_hi;
            let shifted = if high_side {
                x - t.inner_hi
            } else {
                x - t.inner_lo
            };
            ShiftedValue {
                group,
                high_side,
                shifted,
            }
        }
        GroupKind::Inner => ShiftedValue {
            group,
            high_side: x >= 0.0,
            shifted: x.abs(),
        },
    }
}

/// Inverts [`shift`] for the sparse groups, where the side bit is stored
/// explicitly.
///
/// For the middle group use [`unshift_middle`], which infers the side from
/// the sign of the reconstructed shifted value.
#[inline]
pub fn unshift_sparse(group: GroupKind, high_side: bool, magnitude: f32, t: &Thresholds) -> f32 {
    match group {
        GroupKind::Outer => {
            if high_side {
                t.outer_hi + magnitude
            } else {
                t.outer_lo - magnitude
            }
        }
        GroupKind::Inner => {
            if high_side {
                magnitude
            } else {
                -magnitude
            }
        }
        GroupKind::Middle => {
            // The dense path never calls this; fall back to side-aware
            // middle reconstruction for robustness.
            if high_side {
                t.inner_hi + magnitude
            } else {
                t.inner_lo - magnitude
            }
        }
    }
}

/// Inverts the middle-group shift, inferring the side from the sign of the
/// reconstructed shifted value (positive ⇔ above `T_i_hi`).
#[inline]
pub fn unshift_middle(shifted: f32, t: &Thresholds) -> f32 {
    if shifted >= 0.0 {
        shifted + t.inner_hi
    } else {
        shifted + t.inner_lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;

    fn t() -> Thresholds {
        Thresholds::new(-4.0, -0.5, 0.5, 4.0).unwrap()
    }

    #[test]
    fn middle_shift_roundtrips_exactly() {
        let t = t();
        for &x in &[-3.9f32, -0.51, 0.51, 1.7, 3.99] {
            let s = shift(x, &t);
            assert_eq!(s.group, GroupKind::Middle);
            let back = unshift_middle(s.shifted, &t);
            assert!((back - x).abs() < 1e-6, "x={x} back={back}");
        }
    }

    #[test]
    fn outer_shift_roundtrips_exactly() {
        let t = t();
        for &x in &[-100.0f32, -4.01, 4.01, 55.0] {
            let s = shift(x, &t);
            assert_eq!(s.group, GroupKind::Outer);
            assert!(s.shifted >= 0.0, "magnitude must be non-negative");
            let back = unshift_sparse(s.group, s.high_side, s.shifted, &t);
            assert!((back - x).abs() < 1e-4, "x={x} back={back}");
        }
    }

    #[test]
    fn inner_shift_roundtrips_exactly() {
        let t = t();
        for &x in &[-0.5f32, -0.1, 0.0, 0.3, 0.5] {
            let s = shift(x, &t);
            assert_eq!(s.group, GroupKind::Inner);
            let back = unshift_sparse(s.group, s.high_side, s.shifted, &t);
            assert!((back - x).abs() < 1e-6);
        }
    }

    #[test]
    fn shift_narrows_outer_range() {
        // The whole point of group-shift: an outer value of 100 with
        // T_o_hi = 4 becomes 96, but more importantly the *range* of outer
        // magnitudes starts at 0 instead of at the threshold.
        let t = t();
        let s = shift(4.5, &t);
        assert!((s.shifted - 0.5).abs() < 1e-6);
        let s = shift(-4.5, &t);
        assert!((s.shifted - 0.5).abs() < 1e-6);
    }

    #[test]
    fn middle_sides_shift_toward_zero() {
        let t = t();
        let hi = shift(0.6, &t);
        assert!(hi.high_side && (hi.shifted - 0.1).abs() < 1e-6);
        let lo = shift(-0.6, &t);
        assert!(!lo.high_side && (lo.shifted + 0.1).abs() < 1e-6);
    }
}

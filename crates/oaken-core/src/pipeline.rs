//! The end-to-end [`OakenQuantizer`]: thresholds + group-shift + fused
//! encoding behind one API, mirroring the hardware quantization engine's
//! dataflow (§5.2, Figure 9).
//!
//! Quantization path (per token vector, single streaming pass + encode):
//!
//! 1. **decomposer** — classify each element against the offline thresholds
//!    and apply the group shift;
//! 2. **min/max finders + σ calculators** — per-group online statistics;
//! 3. **inlier/outlier quantizers** — 4-bit middle codes, 4+1-bit outlier
//!    codes;
//! 4. **zero-remove shifter / concatenator** — fuse outlier magnitudes into
//!    the dense matrix and emit 8-bit COO entries.

use crate::config::OakenConfig;
use crate::encoding::{CooEntry, FusedVector, ScaleSet};
use crate::error::OakenError;
use crate::groups::GroupKind;
use crate::groupshift::{shift, unshift_middle, unshift_sparse};
use crate::quant::UniformQuantizer;
use crate::thresholds::{KvKind, ModelThresholds};
use crate::traits::{KvQuantizer, OnlineCost};

/// Oaken's online KV-cache quantizer, constructed from offline-profiled
/// thresholds.
///
/// # Example
///
/// ```
/// use oaken_core::{KvKind, OakenConfig, OakenQuantizer, OfflineProfiler};
///
/// let config = OakenConfig::default();
/// let mut profiler = OfflineProfiler::new(config.clone(), 1);
/// let sample: Vec<f32> = (0..512).map(|i| ((i % 61) as f32 - 30.0) / 5.0).collect();
/// profiler.observe(0, KvKind::Key, &sample);
/// profiler.observe(0, KvKind::Value, &sample);
/// let q = OakenQuantizer::new(config, profiler.finish());
///
/// let fused = q.quantize_vector(&sample, 0, KvKind::Key)?;
/// let restored = q.dequantize_vector(&fused, 0, KvKind::Key)?;
/// let mse: f32 = sample.iter().zip(&restored)
///     .map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / sample.len() as f32;
/// assert!(mse < 0.05);
/// # Ok::<(), oaken_core::OakenError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OakenQuantizer {
    config: OakenConfig,
    thresholds: ModelThresholds,
}

impl OakenQuantizer {
    /// Creates a quantizer from a configuration and profiled thresholds.
    pub fn new(config: OakenConfig, thresholds: ModelThresholds) -> Self {
        Self { config, thresholds }
    }

    /// The active configuration.
    pub fn config(&self) -> &OakenConfig {
        &self.config
    }

    /// The profiled thresholds.
    pub fn thresholds(&self) -> &ModelThresholds {
        &self.thresholds
    }

    /// Quantizes one per-token KV vector into the fused encoding.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an unprofiled layer.
    pub fn quantize_vector(
        &self,
        x: &[f32],
        layer: usize,
        kind: KvKind,
    ) -> Result<FusedVector, OakenError> {
        let t = *self.thresholds.get(layer, kind)?;
        let bits = self.config.bits;

        // Pass 1: decompose + group-shift + per-group min/max.
        let mut shifted = Vec::with_capacity(x.len());
        let mut middle_min = f32::INFINITY;
        let mut middle_max = f32::NEG_INFINITY;
        let mut inner_mag_max = 0.0f32;
        let mut outer_mag_max = 0.0f32;
        let mut num_middle = 0usize;
        for &v in x {
            let s = shift(v, &t);
            match s.group {
                GroupKind::Middle => {
                    num_middle += 1;
                    middle_min = middle_min.min(s.shifted);
                    middle_max = middle_max.max(s.shifted);
                }
                GroupKind::Inner => inner_mag_max = inner_mag_max.max(s.shifted),
                GroupKind::Outer => outer_mag_max = outer_mag_max.max(s.shifted),
            }
            shifted.push(s);
        }
        if num_middle == 0 {
            middle_min = 0.0;
            middle_max = 0.0;
        }
        let scales = ScaleSet {
            middle_min,
            middle_max,
            inner_mag_max,
            outer_mag_max,
        };

        // σ calculators (Eq. 2).
        let q_mid = UniformQuantizer::new(middle_min, middle_max, bits.middle)?;
        let q_inner = UniformQuantizer::new(0.0, inner_mag_max, bits.outlier_mag)?;
        let q_outer = UniformQuantizer::new(0.0, outer_mag_max, bits.outlier_mag)?;

        // Pass 2: emit dense codes and COO entries.
        let mut dense_codes = Vec::with_capacity(x.len());
        let mut outliers = Vec::new();
        for (i, s) in shifted.iter().enumerate() {
            match s.group {
                GroupKind::Middle => dense_codes.push(q_mid.quantize(s.shifted) as u8),
                GroupKind::Inner => {
                    dense_codes.push(q_inner.quantize(s.shifted) as u8);
                    outliers.push(CooEntry {
                        index: i,
                        group: GroupKind::Inner,
                        high_side: s.high_side,
                    });
                }
                GroupKind::Outer => {
                    dense_codes.push(q_outer.quantize(s.shifted) as u8);
                    outliers.push(CooEntry {
                        index: i,
                        group: GroupKind::Outer,
                        high_side: s.high_side,
                    });
                }
            }
        }

        FusedVector::from_parts(x.len(), self.config.block_size, &dense_codes, &outliers, scales)
    }

    /// Dequantizes a fused vector back to f32, mirroring the streaming
    /// dequantization engine (zero-insert walk over the COO stream).
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an unprofiled layer.
    pub fn dequantize_vector(
        &self,
        fv: &FusedVector,
        layer: usize,
        kind: KvKind,
    ) -> Result<Vec<f32>, OakenError> {
        let t = *self.thresholds.get(layer, kind)?;
        let bits = self.config.bits;
        let s = *fv.scales();
        let q_mid = UniformQuantizer::new(s.middle_min, s.middle_max, bits.middle)?;
        let q_inner = UniformQuantizer::new(0.0, s.inner_mag_max, bits.outlier_mag)?;
        let q_outer = UniformQuantizer::new(0.0, s.outer_mag_max, bits.outlier_mag)?;

        // Mark outlier positions (the zero-insert step).
        let mut kindmap: Vec<Option<(GroupKind, bool)>> = vec![None; fv.dim()];
        for e in fv.decode_outliers() {
            kindmap[e.index] = Some((e.group, e.high_side));
        }

        let mut out = Vec::with_capacity(fv.dim());
        for (i, &kind_slot) in kindmap.iter().enumerate() {
            let code = u32::from(fv.dense_code(i));
            let v = match kind_slot {
                None => unshift_middle(q_mid.dequantize(code), &t),
                Some((GroupKind::Inner, high)) => {
                    unshift_sparse(GroupKind::Inner, high, q_inner.dequantize(code), &t)
                }
                Some((GroupKind::Outer, high)) => {
                    unshift_sparse(GroupKind::Outer, high, q_outer.dequantize(code), &t)
                }
                Some((GroupKind::Middle, _)) => unreachable!("COO never stores middle"),
            };
            out.push(v);
        }
        Ok(out)
    }

    /// Quantizes a `[rows × d]` matrix row-by-row and reports aggregate
    /// compression statistics.
    ///
    /// # Errors
    ///
    /// Propagates per-vector quantization errors.
    pub fn compression_report(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        layer: usize,
        kind: KvKind,
    ) -> Result<CompressionReport, OakenError> {
        if data.len() != rows * d {
            return Err(OakenError::DimensionMismatch {
                expected: rows * d,
                actual: data.len(),
            });
        }
        let mut payload = 0usize;
        let mut tables = 0usize;
        let mut outliers = 0usize;
        for r in 0..rows {
            let fv = self.quantize_vector(&data[r * d..(r + 1) * d], layer, kind)?;
            payload += fv.payload_bytes();
            tables += fv.table_bytes();
            outliers += fv.num_outliers();
        }
        Ok(CompressionReport {
            elements: rows * d,
            payload_bytes: payload,
            table_bytes: tables,
            outliers,
        })
    }
}

impl KvQuantizer for OakenQuantizer {
    fn name(&self) -> &'static str {
        "oaken"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        layer: usize,
        kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let mut out = Vec::with_capacity(data.len());
        for r in 0..rows {
            let row = &data[r * d..(r + 1) * d];
            // An unprofiled layer is a caller bug for the trait-level API;
            // surface it loudly rather than silently passing data through.
            let fv = self
                .quantize_vector(row, layer, kind)
                .expect("layer must be profiled before quantization");
            let back = self
                .dequantize_vector(&fv, layer, kind)
                .expect("fused vector decodes with the same thresholds");
            out.extend_from_slice(&back);
        }
        out
    }

    fn effective_bits(&self, _rows: usize, d: usize) -> f64 {
        self.config.predicted_effective_bits(d)
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            // Classify (2 compares) + shift (1 sub) + scale (1 mul) +
            // round/clamp (1) per element; min/max folds amortized in.
            quant_flops_per_elem: 5.0,
            // Dequantize: 1 mul + 1 add + unshift add.
            dequant_flops_per_elem: 3.0,
            sort_nlogn: false,
            channel_reorder: false,
            // Executed on Oaken's dedicated engines this is 1.0; the GPU
            // implementation of §6.2 sees warp divergence from the
            // three-way group split, which `oaken-accel` models separately.
            gpu_divergence_penalty: 4.0,
        }
    }
}

/// Aggregate compression statistics for a quantized matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionReport {
    /// Total elements quantized.
    pub elements: usize,
    /// KV payload bytes (dense + sparse + scales).
    pub payload_bytes: usize,
    /// MMU management-table bytes (per-block transfer sizes).
    pub table_bytes: usize,
    /// Total outliers stored sparsely.
    pub outliers: usize,
}

impl CompressionReport {
    /// Mean stored bits per element (payload only, like the paper's
    /// effective bitwidth).
    pub fn effective_bits(&self) -> f64 {
        self.payload_bytes as f64 * 8.0 / self.elements.max(1) as f64
    }

    /// Compression ratio versus FP16 storage.
    pub fn ratio_vs_fp16(&self) -> f64 {
        16.0 / self.effective_bits()
    }

    /// Observed outlier fraction.
    pub fn outlier_fraction(&self) -> f64 {
        self.outliers as f64 / self.elements.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupRatios;
    use crate::profiler::OfflineProfiler;

    fn test_vector(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed) >> 33)
                    as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 4.0;
                match i % 53 {
                    0 => base * 10.0, // outer outliers
                    1 => base * 0.01, // inner outliers
                    _ => base,
                }
            })
            .collect()
    }

    fn quantizer() -> OakenQuantizer {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 2);
        for s in 0..32 {
            for layer in 0..2 {
                for kind in KvKind::ALL {
                    p.observe(layer, kind, &test_vector(1024, s * 7 + layer as u64));
                }
            }
        }
        OakenQuantizer::new(config, p.try_finish().unwrap())
    }

    #[test]
    fn roundtrip_error_is_small() {
        let q = quantizer();
        let x = test_vector(1024, 12345);
        let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
        let back = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
        assert_eq!(back.len(), x.len());
        let rng = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let mse: f32 =
            x.iter().zip(&back).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / x.len() as f32;
        let rel = mse.sqrt() / rng;
        assert!(rel < 0.02, "relative RMS error too large: {rel}");
    }

    #[test]
    fn outliers_survive_quantization() {
        // The whole point of the hybrid scheme: a huge outlier must come
        // back with small *relative* error instead of being clipped.
        let q = quantizer();
        let mut x = test_vector(512, 99);
        x[7] = 40.0;
        x[100] = -35.0;
        let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
        let back = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
        assert!((back[7] - 40.0).abs() / 40.0 < 0.05, "got {}", back[7]);
        assert!((back[100] + 35.0).abs() / 35.0 < 0.05, "got {}", back[100]);
    }

    #[test]
    fn near_zero_values_do_not_vanish() {
        let q = quantizer();
        let mut x = test_vector(512, 5);
        x[3] = 0.004;
        x[9] = -0.003;
        let fv = q.quantize_vector(&x, 0, KvKind::Value).unwrap();
        let back = q.dequantize_vector(&fv, 0, KvKind::Value).unwrap();
        // Inner-group isolation keeps the sign and order of magnitude.
        assert!(back[3] >= 0.0);
        assert!(back[9] <= 0.0);
        assert!(back[3].abs() < 0.05);
    }

    #[test]
    fn observed_effective_bits_near_predicted() {
        let q = quantizer();
        let rows = 16;
        let d = 1024;
        let data: Vec<f32> = (0..rows).flat_map(|r| test_vector(d, r as u64)).collect();
        let report = q
            .compression_report(&data, rows, d, 0, KvKind::Key)
            .unwrap();
        let predicted = q.effective_bits(rows, d);
        let observed = report.effective_bits();
        assert!(
            (observed - predicted).abs() < 0.5,
            "predicted {predicted}, observed {observed}"
        );
        assert!(report.ratio_vs_fp16() > 3.0);
    }

    #[test]
    fn trait_roundtrip_matches_vector_path() {
        let q = quantizer();
        let d = 256;
        let x = test_vector(d, 3);
        let via_trait = q.roundtrip_matrix(&x, 1, d, 0, KvKind::Key);
        let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
        let via_vec = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
        assert_eq!(via_trait, via_vec);
    }

    #[test]
    fn layer_out_of_range_is_error() {
        let q = quantizer();
        assert!(matches!(
            q.quantize_vector(&[1.0, 2.0], 9, KvKind::Key),
            Err(OakenError::LayerOutOfRange { .. })
        ));
    }

    #[test]
    fn higher_outlier_ratio_lowers_error_but_raises_bits() {
        let mk = |outer: f64, inner: f64| {
            let ratios = GroupRatios::new(outer, 1.0 - outer - inner, inner).unwrap();
            let config = OakenConfig {
                ratios,
                ..OakenConfig::default()
            };
            let mut p = OfflineProfiler::new(config.clone(), 1);
            for s in 0..16 {
                p.observe(0, KvKind::Key, &test_vector(2048, s));
                p.observe(0, KvKind::Value, &test_vector(2048, s));
            }
            OakenQuantizer::new(config, p.try_finish().unwrap())
        };
        let small = mk(0.01, 0.01);
        let large = mk(0.10, 0.10);
        let x = test_vector(2048, 777);
        let err = |q: &OakenQuantizer| {
            let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
            let back = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
            x.iter()
                .zip(&back)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(err(&large) <= err(&small) * 1.5, "more outliers should not hurt much");
        assert!(large.effective_bits(1, 2048) > small.effective_bits(1, 2048));
    }

    #[test]
    fn compression_report_checks_dims() {
        let q = quantizer();
        assert!(matches!(
            q.compression_report(&[0.0; 10], 2, 6, 0, KvKind::Key),
            Err(OakenError::DimensionMismatch { .. })
        ));
    }
}

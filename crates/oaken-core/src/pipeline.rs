//! The end-to-end [`OakenQuantizer`]: thresholds + group-shift + fused
//! encoding behind one API, mirroring the hardware quantization engine's
//! dataflow (§5.2, Figure 9).
//!
//! Quantization path (per token vector, single streaming pass + encode):
//!
//! 1. **decomposer** — classify each element against the offline thresholds
//!    and apply the group shift;
//! 2. **min/max finders + σ calculators** — per-group online statistics;
//! 3. **inlier/outlier quantizers** — 4-bit middle codes, 4+1-bit outlier
//!    codes;
//! 4. **zero-remove shifter / concatenator** — fuse outlier magnitudes into
//!    the dense matrix and emit 8-bit COO entries.

use crate::config::OakenConfig;
use crate::encoding::{CooEntry, FusedVector, ScaleSet};
use crate::error::OakenError;
use crate::groups::GroupKind;
use crate::groupshift::{shift, unshift_middle, unshift_sparse, ShiftedValue};
use crate::kernel::{EncodedReadPlan, FusedReadParams};
use crate::quant::UniformQuantizer;
use crate::thresholds::{KvKind, ModelThresholds, Thresholds};
use crate::traits::{KvQuantizer, KvRowStream, OnlineCost};

/// Reusable scratch buffers for the allocation-free quantize/dequantize
/// paths ([`OakenQuantizer::quantize_vector_with`],
/// [`OakenQuantizer::roundtrip_vector_into`]).
///
/// Holding one `OakenScratch` per decode stream removes every per-token
/// heap allocation from the online quantizer — the property §5.2's
/// hardware engine gets for free from its fixed SRAM buffers, and the one
/// the serving simulation must replicate to keep long-sequence decode
/// linear. Buffers grow to the vector width on first use and are reused
/// verbatim afterwards.
#[derive(Debug, Clone, Default)]
pub struct OakenScratch {
    /// Per-element classification + shifted values (pass 1 output).
    shifted: Vec<ShiftedValue>,
    /// 4-bit dense codes (pass 2 output), one byte per element.
    dense_codes: Vec<u8>,
    /// Absolute-indexed outlier entries in ascending index order.
    outliers: Vec<CooEntry>,
    /// Per-vector scales computed in pass 1.
    scales: ScaleSet,
}

impl OakenScratch {
    /// Creates an empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of outliers found by the last quantization pass.
    pub fn num_outliers(&self) -> usize {
        self.outliers.len()
    }
}

/// Oaken's online KV-cache quantizer, constructed from offline-profiled
/// thresholds.
///
/// # Example
///
/// ```
/// use oaken_core::{KvKind, OakenConfig, OakenQuantizer, OfflineProfiler};
///
/// let config = OakenConfig::default();
/// let mut profiler = OfflineProfiler::new(config.clone(), 1);
/// let sample: Vec<f32> = (0..512).map(|i| ((i % 61) as f32 - 30.0) / 5.0).collect();
/// profiler.observe(0, KvKind::Key, &sample);
/// profiler.observe(0, KvKind::Value, &sample);
/// let q = OakenQuantizer::new(config, profiler.finish());
///
/// let fused = q.quantize_vector(&sample, 0, KvKind::Key)?;
/// let restored = q.dequantize_vector(&fused, 0, KvKind::Key)?;
/// let mse: f32 = sample.iter().zip(&restored)
///     .map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / sample.len() as f32;
/// assert!(mse < 0.05);
/// # Ok::<(), oaken_core::OakenError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OakenQuantizer {
    config: OakenConfig,
    thresholds: ModelThresholds,
}

impl OakenQuantizer {
    /// Creates a quantizer from a configuration and profiled thresholds.
    pub fn new(config: OakenConfig, thresholds: ModelThresholds) -> Self {
        Self { config, thresholds }
    }

    /// The active configuration.
    pub fn config(&self) -> &OakenConfig {
        &self.config
    }

    /// The profiled thresholds.
    pub fn thresholds(&self) -> &ModelThresholds {
        &self.thresholds
    }

    /// The row-independent parameters of the quantized-domain read path
    /// for one `(layer, kind)` tensor: offline thresholds plus configured
    /// bit-widths (everything a [`crate::kernel::RowDecode`] needs besides
    /// the per-row scales).
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an unprofiled layer.
    pub fn fused_read_params(
        &self,
        layer: usize,
        kind: KvKind,
    ) -> Result<FusedReadParams, OakenError> {
        Ok(FusedReadParams {
            thresholds: *self.thresholds.get(layer, kind)?,
            middle_bits: self.config.bits.middle,
            outlier_bits: self.config.bits.outlier_mag,
        })
    }

    /// Quantizes one per-token KV vector into the fused encoding.
    ///
    /// Convenience wrapper over [`OakenQuantizer::quantize_vector_with`]
    /// with throwaway scratch; hot paths (the streaming cache, benches)
    /// should hold an [`OakenScratch`] and use the `_with` variant.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an unprofiled layer.
    pub fn quantize_vector(
        &self,
        x: &[f32],
        layer: usize,
        kind: KvKind,
    ) -> Result<FusedVector, OakenError> {
        self.quantize_vector_with(x, layer, kind, &mut OakenScratch::new())
    }

    /// Quantizes one per-token KV vector using caller-owned scratch
    /// buffers: the only heap allocations are the encoded
    /// [`FusedVector`]'s own storage (which *is* the cache payload), never
    /// intermediate state.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an unprofiled layer.
    pub fn quantize_vector_with(
        &self,
        x: &[f32],
        layer: usize,
        kind: KvKind,
        scratch: &mut OakenScratch,
    ) -> Result<FusedVector, OakenError> {
        let t = *self.thresholds.get(layer, kind)?;
        self.quantize_into_scratch(x, &t, scratch)?;
        FusedVector::from_parts(
            x.len(),
            self.config.block_size,
            &scratch.dense_codes,
            &scratch.outliers,
            scratch.scales,
        )
    }

    /// The two-pass quantization engine (§5.2 Figure 9), writing into
    /// reusable scratch buffers.
    fn quantize_into_scratch(
        &self,
        x: &[f32],
        t: &Thresholds,
        scratch: &mut OakenScratch,
    ) -> Result<(), OakenError> {
        let bits = self.config.bits;

        // Pass 1: decompose + group-shift + per-group min/max.
        scratch.shifted.clear();
        scratch.shifted.reserve(x.len());
        let mut middle_min = f32::INFINITY;
        let mut middle_max = f32::NEG_INFINITY;
        let mut inner_mag_max = 0.0f32;
        let mut outer_mag_max = 0.0f32;
        let mut num_middle = 0usize;
        for &v in x {
            let s = shift(v, t);
            match s.group {
                GroupKind::Middle => {
                    num_middle += 1;
                    middle_min = middle_min.min(s.shifted);
                    middle_max = middle_max.max(s.shifted);
                }
                GroupKind::Inner => inner_mag_max = inner_mag_max.max(s.shifted),
                GroupKind::Outer => outer_mag_max = outer_mag_max.max(s.shifted),
            }
            scratch.shifted.push(s);
        }
        if num_middle == 0 {
            middle_min = 0.0;
            middle_max = 0.0;
        }
        scratch.scales = ScaleSet {
            middle_min,
            middle_max,
            inner_mag_max,
            outer_mag_max,
        };

        // σ calculators (Eq. 2).
        let q_mid = UniformQuantizer::new(middle_min, middle_max, bits.middle)?;
        let q_inner = UniformQuantizer::new(0.0, inner_mag_max, bits.outlier_mag)?;
        let q_outer = UniformQuantizer::new(0.0, outer_mag_max, bits.outlier_mag)?;

        // Pass 2: emit dense codes and COO entries.
        scratch.dense_codes.clear();
        scratch.dense_codes.reserve(x.len());
        scratch.outliers.clear();
        for (i, s) in scratch.shifted.iter().enumerate() {
            match s.group {
                GroupKind::Middle => scratch.dense_codes.push(q_mid.quantize(s.shifted) as u8),
                GroupKind::Inner => {
                    scratch.dense_codes.push(q_inner.quantize(s.shifted) as u8);
                    scratch.outliers.push(CooEntry {
                        index: i,
                        group: GroupKind::Inner,
                        high_side: s.high_side,
                    });
                }
                GroupKind::Outer => {
                    scratch.dense_codes.push(q_outer.quantize(s.shifted) as u8);
                    scratch.outliers.push(CooEntry {
                        index: i,
                        group: GroupKind::Outer,
                        high_side: s.high_side,
                    });
                }
            }
        }
        Ok(())
    }

    /// Dequantizes a fused vector back to f32.
    ///
    /// Convenience wrapper over
    /// [`OakenQuantizer::dequantize_vector_into`] allocating a fresh
    /// output vector.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an unprofiled layer.
    pub fn dequantize_vector(
        &self,
        fv: &FusedVector,
        layer: usize,
        kind: KvKind,
    ) -> Result<Vec<f32>, OakenError> {
        let mut out = Vec::with_capacity(fv.dim());
        self.dequantize_vector_into(fv, layer, kind, &mut out)?;
        Ok(out)
    }

    /// Dequantizes a fused vector, *appending* `fv.dim()` values to `out`
    /// without any other allocation: the streaming engine's zero-insert is
    /// an in-order walk of the COO stream ([`FusedVector::outliers`])
    /// interleaved with the dense nibble scan, not a scatter into a
    /// position map.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an unprofiled layer.
    pub fn dequantize_vector_into(
        &self,
        fv: &FusedVector,
        layer: usize,
        kind: KvKind,
        out: &mut Vec<f32>,
    ) -> Result<(), OakenError> {
        let t = *self.thresholds.get(layer, kind)?;
        let bits = self.config.bits;
        let s = *fv.scales();
        let q_mid = UniformQuantizer::new(s.middle_min, s.middle_max, bits.middle)?;
        let q_inner = UniformQuantizer::new(0.0, s.inner_mag_max, bits.outlier_mag)?;
        let q_outer = UniformQuantizer::new(0.0, s.outer_mag_max, bits.outlier_mag)?;
        decode_walk(
            &t,
            &q_mid,
            &q_inner,
            &q_outer,
            fv.dim(),
            |i| u32::from(fv.dense_code(i)),
            fv.outliers(),
            out,
        );
        Ok(())
    }

    /// Quantizes and immediately dequantizes one vector entirely through
    /// caller-owned buffers — zero heap allocations once `scratch` and
    /// `out` have warmed up. This is the per-token decode simulation path:
    /// what the dedicated quantization/dequantization engines of §5.2 do
    /// in hardware per generated token.
    ///
    /// Appends exactly `x.len()` values to `out`. Bit-identical to
    /// [`OakenQuantizer::quantize_vector`] followed by
    /// [`OakenQuantizer::dequantize_vector`].
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::LayerOutOfRange`] for an unprofiled layer.
    pub fn roundtrip_vector_into(
        &self,
        x: &[f32],
        layer: usize,
        kind: KvKind,
        scratch: &mut OakenScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), OakenError> {
        let t = *self.thresholds.get(layer, kind)?;
        self.quantize_into_scratch(x, &t, scratch)?;
        let bits = self.config.bits;
        let s = scratch.scales;
        let q_mid = UniformQuantizer::new(s.middle_min, s.middle_max, bits.middle)?;
        let q_inner = UniformQuantizer::new(0.0, s.inner_mag_max, bits.outlier_mag)?;
        let q_outer = UniformQuantizer::new(0.0, s.outer_mag_max, bits.outlier_mag)?;
        decode_walk(
            &t,
            &q_mid,
            &q_inner,
            &q_outer,
            x.len(),
            |i| u32::from(scratch.dense_codes[i]),
            scratch.outliers.iter().copied(),
            out,
        );
        Ok(())
    }

    /// Quantizes a `[rows × d]` matrix row-by-row and reports aggregate
    /// compression statistics.
    ///
    /// # Errors
    ///
    /// Propagates per-vector quantization errors.
    pub fn compression_report(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        layer: usize,
        kind: KvKind,
    ) -> Result<CompressionReport, OakenError> {
        if data.len() != rows * d {
            return Err(OakenError::DimensionMismatch {
                expected: rows * d,
                actual: data.len(),
            });
        }
        let mut payload = 0usize;
        let mut tables = 0usize;
        let mut outliers = 0usize;
        for r in 0..rows {
            let fv = self.quantize_vector(&data[r * d..(r + 1) * d], layer, kind)?;
            payload += fv.payload_bytes();
            tables += fv.table_bytes();
            outliers += fv.num_outliers();
        }
        Ok(CompressionReport {
            elements: rows * d,
            payload_bytes: payload,
            table_bytes: tables,
            outliers,
        })
    }
}

/// The streaming zero-insert dequantization walk shared by the fused and
/// scratch decode paths: scan elements in order, consuming the (sorted)
/// outlier stream whenever its head matches the current index.
#[allow(clippy::too_many_arguments)]
fn decode_walk(
    t: &Thresholds,
    q_mid: &UniformQuantizer,
    q_inner: &UniformQuantizer,
    q_outer: &UniformQuantizer,
    dim: usize,
    code_at: impl Fn(usize) -> u32,
    outliers: impl Iterator<Item = CooEntry>,
    out: &mut Vec<f32>,
) {
    let mut outliers = outliers.peekable();
    out.reserve(dim);
    for i in 0..dim {
        let code = code_at(i);
        let v = match outliers.peek() {
            Some(e) if e.index == i => {
                let e = *e;
                outliers.next();
                match e.group {
                    GroupKind::Inner => {
                        unshift_sparse(GroupKind::Inner, e.high_side, q_inner.dequantize(code), t)
                    }
                    GroupKind::Outer => {
                        unshift_sparse(GroupKind::Outer, e.high_side, q_outer.dequantize(code), t)
                    }
                    GroupKind::Middle => unreachable!("COO never stores middle"),
                }
            }
            _ => unshift_middle(q_mid.dequantize(code), t),
        };
        out.push(v);
    }
}

/// Incremental append-only stream for Oaken: rows are independent (all
/// statistics are per-vector, thresholds are offline), so every append is
/// O(d) with no warm-up and the stream is bit-exact with the batch path by
/// construction. The stream owns the canonical *encoded* state — one
/// [`FusedVector`] per row, exactly what the MMU lays out in pages.
pub struct OakenRowStream {
    quantizer: OakenQuantizer,
    layer: usize,
    kind: KvKind,
    d: usize,
    scratch: OakenScratch,
    /// Per-row fused encodings: the stored cache payload.
    encoded: Vec<FusedVector>,
    /// Read-side cache of `encoded[i]` — decode coefficients, flat dense
    /// arena, and ready-to-apply outlier patches — built once at append
    /// time so the fused kernels never redo per-row decode work per token
    /// (derived metadata, not counted in `payload`).
    plan: EncodedReadPlan,
    payload: usize,
}

impl OakenRowStream {
    /// Folds and caches the newest row's read-plan entries.
    fn push_decode(&mut self, fv: &FusedVector) {
        let params = self
            .quantizer
            .fused_read_params(self.layer, self.kind)
            .expect("layer must be profiled before streaming quantization");
        self.plan.push_row(fv, &params);
    }
}

impl OakenRowStream {
    /// The encoded rows held by the stream (the actual cache contents).
    pub fn encoded_rows(&self) -> &[FusedVector] {
        &self.encoded
    }
}

impl std::fmt::Debug for OakenRowStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OakenRowStream")
            .field("layer", &self.layer)
            .field("kind", &self.kind)
            .field("d", &self.d)
            .field("rows", &self.encoded.len())
            .finish()
    }
}

impl KvRowStream for OakenRowStream {
    fn append_row(&mut self, row: &[f32], view: &mut Vec<f32>) {
        assert_eq!(row.len(), self.d, "row width mismatch");
        // An unprofiled layer is a caller bug on the streaming path, as on
        // the trait-level batch path.
        let fv = self
            .quantizer
            .quantize_vector_with(row, self.layer, self.kind, &mut self.scratch)
            .expect("layer must be profiled before streaming quantization");
        self.quantizer
            .dequantize_vector_into(&fv, self.layer, self.kind, view)
            .expect("fused vector decodes with the same thresholds");
        self.payload += fv.payload_bytes();
        self.push_decode(&fv);
        self.encoded.push(fv);
    }

    fn rows(&self) -> usize {
        self.encoded.len()
    }

    fn payload_bytes(&self) -> Option<usize> {
        Some(self.payload)
    }

    fn reset(&mut self) {
        // All Oaken state beyond the appended rows (thresholds, config) is
        // offline-calibrated and shared, so a reset stream is bit-exact
        // with a freshly opened one. Scratch buffers are deliberately kept
        // warm for the next sequence.
        self.encoded.clear();
        self.plan.clear();
        self.payload = 0;
    }

    fn last_row_payload(&self) -> Option<(usize, usize)> {
        self.encoded.last().map(|fv| {
            let sparse = fv.sparse_bytes().len();
            // Scales travel with the dense transfer (fixed size per token).
            (fv.payload_bytes() - sparse, sparse)
        })
    }

    fn encoded_rows(&self) -> Option<&[FusedVector]> {
        Some(&self.encoded)
    }

    fn append_row_encoded(&mut self, row: &[f32]) -> bool {
        assert_eq!(row.len(), self.d, "row width mismatch");
        // Same quantization as `append_row`, minus the dequantize-into-view
        // step: the encoded vector *is* the cache contents, and the fused
        // attention kernels read it in place.
        let fv = self
            .quantizer
            .quantize_vector_with(row, self.layer, self.kind, &mut self.scratch)
            .expect("layer must be profiled before streaming quantization");
        self.payload += fv.payload_bytes();
        self.push_decode(&fv);
        self.encoded.push(fv);
        true
    }

    fn fused_read_params(&self) -> Option<FusedReadParams> {
        self.quantizer.fused_read_params(self.layer, self.kind).ok()
    }

    fn read_plan(&self) -> Option<&EncodedReadPlan> {
        Some(&self.plan)
    }

    fn adopt_encoded_rows(&mut self, rows: &[FusedVector]) -> bool {
        for fv in rows {
            self.payload += fv.payload_bytes();
            self.push_decode(fv);
            self.encoded.push(fv.clone());
        }
        true
    }

    fn decode_rows_into(&self, start: usize, end: usize, out: &mut Vec<f32>) -> bool {
        assert!(
            start <= end && end <= self.encoded.len(),
            "row range {start}..{end} out of bounds ({} rows)",
            self.encoded.len()
        );
        for fv in &self.encoded[start..end] {
            self.quantizer
                .dequantize_vector_into(fv, self.layer, self.kind, out)
                .expect("fused vector decodes with the same thresholds");
        }
        true
    }
}

impl KvQuantizer for OakenQuantizer {
    fn name(&self) -> &'static str {
        "oaken"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        layer: usize,
        kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let mut out = Vec::with_capacity(data.len());
        for r in 0..rows {
            let row = &data[r * d..(r + 1) * d];
            // An unprofiled layer is a caller bug for the trait-level API;
            // surface it loudly rather than silently passing data through.
            let fv = self
                .quantize_vector(row, layer, kind)
                .expect("layer must be profiled before quantization");
            let back = self
                .dequantize_vector(&fv, layer, kind)
                .expect("fused vector decodes with the same thresholds");
            out.extend_from_slice(&back);
        }
        out
    }

    fn effective_bits(&self, _rows: usize, d: usize) -> f64 {
        self.config.predicted_effective_bits(d)
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            // Classify (2 compares) + shift (1 sub) + scale (1 mul) +
            // round/clamp (1) per element; min/max folds amortized in.
            quant_flops_per_elem: 5.0,
            // Dequantize: 1 mul + 1 add + unshift add.
            dequant_flops_per_elem: 3.0,
            sort_nlogn: false,
            channel_reorder: false,
            // Executed on Oaken's dedicated engines this is 1.0; the GPU
            // implementation of §6.2 sees warp divergence from the
            // three-way group split, which `oaken-accel` models separately.
            gpu_divergence_penalty: 4.0,
        }
    }

    fn row_stream(&self, d: usize, layer: usize, kind: KvKind) -> Option<Box<dyn KvRowStream>> {
        Some(Box::new(OakenRowStream {
            quantizer: self.clone(),
            layer,
            kind,
            d,
            scratch: OakenScratch::new(),
            encoded: Vec::new(),
            plan: EncodedReadPlan::new(),
            payload: 0,
        }))
    }

    /// Every per-row decision (group classification, shift, scale) is made
    /// against the *offline*-profiled thresholds, so a row's encoding is a
    /// pure function of the row — the property that makes Oaken's pages
    /// prefix-shareable.
    fn prefix_deterministic(&self) -> bool {
        true
    }
}

/// Aggregate compression statistics for a quantized matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionReport {
    /// Total elements quantized.
    pub elements: usize,
    /// KV payload bytes (dense + sparse + scales).
    pub payload_bytes: usize,
    /// MMU management-table bytes (per-block transfer sizes).
    pub table_bytes: usize,
    /// Total outliers stored sparsely.
    pub outliers: usize,
}

impl CompressionReport {
    /// Mean stored bits per element (payload only, like the paper's
    /// effective bitwidth).
    pub fn effective_bits(&self) -> f64 {
        self.payload_bytes as f64 * 8.0 / self.elements.max(1) as f64
    }

    /// Compression ratio versus FP16 storage.
    pub fn ratio_vs_fp16(&self) -> f64 {
        16.0 / self.effective_bits()
    }

    /// Observed outlier fraction.
    pub fn outlier_fraction(&self) -> f64 {
        self.outliers as f64 / self.elements.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupRatios;
    use crate::profiler::OfflineProfiler;

    fn test_vector(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed)
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 4.0;
                match i % 53 {
                    0 => base * 10.0, // outer outliers
                    1 => base * 0.01, // inner outliers
                    _ => base,
                }
            })
            .collect()
    }

    fn quantizer() -> OakenQuantizer {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 2);
        for s in 0..32 {
            for layer in 0..2 {
                for kind in KvKind::ALL {
                    p.observe(layer, kind, &test_vector(1024, s * 7 + layer as u64));
                }
            }
        }
        OakenQuantizer::new(config, p.try_finish().unwrap())
    }

    #[test]
    fn roundtrip_error_is_small() {
        let q = quantizer();
        let x = test_vector(1024, 12345);
        let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
        let back = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
        assert_eq!(back.len(), x.len());
        let rng = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let mse: f32 = x
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / x.len() as f32;
        let rel = mse.sqrt() / rng;
        assert!(rel < 0.02, "relative RMS error too large: {rel}");
    }

    #[test]
    fn outliers_survive_quantization() {
        // The whole point of the hybrid scheme: a huge outlier must come
        // back with small *relative* error instead of being clipped.
        let q = quantizer();
        let mut x = test_vector(512, 99);
        x[7] = 40.0;
        x[100] = -35.0;
        let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
        let back = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
        assert!((back[7] - 40.0).abs() / 40.0 < 0.05, "got {}", back[7]);
        assert!((back[100] + 35.0).abs() / 35.0 < 0.05, "got {}", back[100]);
    }

    #[test]
    fn near_zero_values_do_not_vanish() {
        let q = quantizer();
        let mut x = test_vector(512, 5);
        x[3] = 0.004;
        x[9] = -0.003;
        let fv = q.quantize_vector(&x, 0, KvKind::Value).unwrap();
        let back = q.dequantize_vector(&fv, 0, KvKind::Value).unwrap();
        // Inner-group isolation keeps the sign and order of magnitude.
        assert!(back[3] >= 0.0);
        assert!(back[9] <= 0.0);
        assert!(back[3].abs() < 0.05);
    }

    #[test]
    fn observed_effective_bits_near_predicted() {
        let q = quantizer();
        let rows = 16;
        let d = 1024;
        let data: Vec<f32> = (0..rows).flat_map(|r| test_vector(d, r as u64)).collect();
        let report = q
            .compression_report(&data, rows, d, 0, KvKind::Key)
            .unwrap();
        let predicted = q.effective_bits(rows, d);
        let observed = report.effective_bits();
        assert!(
            (observed - predicted).abs() < 0.5,
            "predicted {predicted}, observed {observed}"
        );
        assert!(report.ratio_vs_fp16() > 3.0);
    }

    #[test]
    fn trait_roundtrip_matches_vector_path() {
        let q = quantizer();
        let d = 256;
        let x = test_vector(d, 3);
        let via_trait = q.roundtrip_matrix(&x, 1, d, 0, KvKind::Key);
        let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
        let via_vec = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
        assert_eq!(via_trait, via_vec);
    }

    #[test]
    fn layer_out_of_range_is_error() {
        let q = quantizer();
        assert!(matches!(
            q.quantize_vector(&[1.0, 2.0], 9, KvKind::Key),
            Err(OakenError::LayerOutOfRange { .. })
        ));
    }

    #[test]
    fn higher_outlier_ratio_lowers_error_but_raises_bits() {
        let mk = |outer: f64, inner: f64| {
            let ratios = GroupRatios::new(outer, 1.0 - outer - inner, inner).unwrap();
            let config = OakenConfig {
                ratios,
                ..OakenConfig::default()
            };
            let mut p = OfflineProfiler::new(config.clone(), 1);
            for s in 0..16 {
                p.observe(0, KvKind::Key, &test_vector(2048, s));
                p.observe(0, KvKind::Value, &test_vector(2048, s));
            }
            OakenQuantizer::new(config, p.try_finish().unwrap())
        };
        let small = mk(0.01, 0.01);
        let large = mk(0.10, 0.10);
        let x = test_vector(2048, 777);
        let err = |q: &OakenQuantizer| {
            let fv = q.quantize_vector(&x, 0, KvKind::Key).unwrap();
            let back = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
            x.iter()
                .zip(&back)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(
            err(&large) <= err(&small) * 1.5,
            "more outliers should not hurt much"
        );
        assert!(large.effective_bits(1, 2048) > small.effective_bits(1, 2048));
    }

    #[test]
    fn scratch_paths_bit_exact_with_allocating_paths() {
        let q = quantizer();
        let mut scratch = OakenScratch::new();
        let mut out = Vec::new();
        for seed in 0..8 {
            let x = test_vector(512, seed * 31 + 1);
            for kind in KvKind::ALL {
                let fv_alloc = q.quantize_vector(&x, 1, kind).unwrap();
                let fv_scratch = q.quantize_vector_with(&x, 1, kind, &mut scratch).unwrap();
                assert_eq!(fv_alloc, fv_scratch);

                let back_alloc = q.dequantize_vector(&fv_alloc, 1, kind).unwrap();
                out.clear();
                q.roundtrip_vector_into(&x, 1, kind, &mut scratch, &mut out)
                    .unwrap();
                assert_eq!(
                    back_alloc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn channel_slices_dequantize_bit_exact() {
        // Tensor-parallel ranks store `FusedVector::slice_channels` shards;
        // decoding a shard must reproduce the corresponding channels of the
        // full decode bit-for-bit (scales are whole-row, reconstruction is
        // per-element). Ranges deliberately cross the 64-element block
        // boundaries unaligned, as head slices do.
        let q = quantizer();
        for seed in 0..8 {
            let x = test_vector(512, seed * 17 + 3);
            for kind in KvKind::ALL {
                let fv = q.quantize_vector(&x, 0, kind).unwrap();
                let full = q.dequantize_vector(&fv, 0, kind).unwrap();
                for range in [0..96, 96..224, 224..512, 40..41, 0..512] {
                    let s = fv.slice_channels(range.clone()).unwrap();
                    assert_eq!(s.dim(), range.len());
                    assert_eq!(s.scales(), fv.scales());
                    let got = q.dequantize_vector(&s, 0, kind).unwrap();
                    for (j, (a, b)) in got.iter().zip(&full[range.clone()]).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "channel {j} of slice {range:?} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_stream_matches_batch_roundtrip() {
        let q = quantizer();
        let d = 256;
        let rows = 24;
        let data: Vec<f32> = (0..rows)
            .flat_map(|r| test_vector(d, r as u64 + 5))
            .collect();
        let mut stream = q.row_stream(d, 0, KvKind::Key).expect("oaken streams");
        let mut view = Vec::new();
        for r in 0..rows {
            stream.append_row(&data[r * d..(r + 1) * d], &mut view);
            assert_eq!(stream.rows(), r + 1);
            let batch = q.roundtrip_matrix(&data[..(r + 1) * d], r + 1, d, 0, KvKind::Key);
            assert_eq!(
                batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                view.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "divergence after {} rows",
                r + 1
            );
        }
        assert!(stream.payload_bytes().unwrap() > 0);
    }

    #[test]
    fn compression_report_checks_dims() {
        let q = quantizer();
        assert!(matches!(
            q.compression_report(&[0.0; 10], 2, 6, 0, KvKind::Key),
            Err(OakenError::DimensionMismatch { .. })
        ));
    }
}

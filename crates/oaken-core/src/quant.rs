//! Uniform quantization (paper Eq. 2–3).
//!
//! Oaken deliberately uses plain min/max uniform quantization — "the scaling
//! factor σ is calculated using only simple statistics to minimize hardware
//! complexity" — leaving all the accuracy heavy-lifting to grouping and
//! group-shift.

use crate::error::OakenError;

/// A min/max uniform quantizer with `bits`-wide codes.
///
/// ```text
/// σ    = (2^m − 1) / (max − min)            (Eq. 2)
/// Q(x) = round((x − min) · σ)                (Eq. 3)
/// D(q) = min + q / σ
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformQuantizer {
    min: f32,
    max: f32,
    bits: u8,
    sigma: f32,
}

impl UniformQuantizer {
    /// Creates a quantizer for the closed range `[min, max]`.
    ///
    /// A degenerate range (`max <= min`) is permitted and maps every input
    /// to code 0 / reconstruction `min`; this happens online when a group is
    /// empty or holds a single value.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::UnsupportedBitWidth`] unless `1 <= bits <= 8`.
    pub fn new(min: f32, max: f32, bits: u8) -> Result<Self, OakenError> {
        if bits == 0 || bits > 8 {
            return Err(OakenError::UnsupportedBitWidth { bits });
        }
        let levels = ((1u32 << bits) - 1) as f32;
        let range = max - min;
        let sigma = if range > 0.0 && range.is_finite() {
            levels / range
        } else {
            0.0
        };
        Ok(Self {
            min,
            max,
            bits,
            sigma,
        })
    }

    /// Convenience constructor scanning a slice for its min/max.
    ///
    /// Returns a degenerate quantizer for empty input.
    ///
    /// # Errors
    ///
    /// Returns [`OakenError::UnsupportedBitWidth`] for invalid `bits`.
    pub fn from_values(values: &[f32], bits: u8) -> Result<Self, OakenError> {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in values {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        if values.is_empty() {
            min = 0.0;
            max = 0.0;
        }
        Self::new(min, max, bits)
    }

    /// The scaling factor σ of Eq. 2 (0 for a degenerate range).
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Lower bound of the quantized range.
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Upper bound of the quantized range.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Code bit-width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Largest representable code, `2^bits − 1`.
    pub fn max_code(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Quantizes `x` per Eq. 3, clamping to the representable code range so
    /// out-of-range inputs saturate instead of wrapping.
    #[inline]
    pub fn quantize(&self, x: f32) -> u32 {
        if self.sigma == 0.0 {
            return 0;
        }
        let q = ((x - self.min) * self.sigma).round();
        if q <= 0.0 {
            0
        } else if q >= self.max_code() as f32 {
            self.max_code()
        } else {
            q as u32
        }
    }

    /// Reconstructs the value for code `q`.
    #[inline]
    pub fn dequantize(&self, q: u32) -> f32 {
        if self.sigma == 0.0 {
            return self.min;
        }
        self.min + q.min(self.max_code()) as f32 / self.sigma
    }

    /// Worst-case absolute reconstruction error for in-range inputs:
    /// half the quantization granule.
    pub fn max_abs_error(&self) -> f32 {
        if self.sigma == 0.0 {
            0.0
        } else {
            0.5 / self.sigma
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded_by_half_granule() {
        let q = UniformQuantizer::new(-2.0, 6.0, 4).unwrap();
        let granule = 8.0 / 15.0;
        for i in 0..100 {
            let x = -2.0 + 8.0 * i as f32 / 99.0;
            let r = q.dequantize(q.quantize(x));
            assert!(
                (x - r).abs() <= granule / 2.0 + 1e-5,
                "x={x} r={r} granule={granule}"
            );
        }
        assert!((q.max_abs_error() - granule / 2.0).abs() < 1e-6);
    }

    #[test]
    fn endpoints_are_exact() {
        let q = UniformQuantizer::new(-1.0, 1.0, 5).unwrap();
        assert_eq!(q.quantize(-1.0), 0);
        assert_eq!(q.quantize(1.0), q.max_code());
        assert!((q.dequantize(0) + 1.0).abs() < 1e-6);
        assert!((q.dequantize(q.max_code()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn saturates_out_of_range() {
        let q = UniformQuantizer::new(0.0, 1.0, 4).unwrap();
        assert_eq!(q.quantize(-10.0), 0);
        assert_eq!(q.quantize(10.0), 15);
    }

    #[test]
    fn degenerate_range_maps_to_min() {
        let q = UniformQuantizer::new(3.0, 3.0, 4).unwrap();
        assert_eq!(q.quantize(3.0), 0);
        assert_eq!(q.quantize(100.0), 0);
        assert_eq!(q.dequantize(7), 3.0);
        assert_eq!(q.max_abs_error(), 0.0);
    }

    #[test]
    fn from_values_scans_range() {
        let q = UniformQuantizer::from_values(&[1.0, -3.0, 2.0], 4).unwrap();
        assert_eq!(q.min(), -3.0);
        assert_eq!(q.max(), 2.0);
        let empty = UniformQuantizer::from_values(&[], 4).unwrap();
        assert_eq!(empty.quantize(5.0), 0);
    }

    #[test]
    fn rejects_bad_bitwidths() {
        assert!(UniformQuantizer::new(0.0, 1.0, 0).is_err());
        assert!(UniformQuantizer::new(0.0, 1.0, 9).is_err());
        assert!(UniformQuantizer::new(0.0, 1.0, 8).is_ok());
    }

    #[test]
    fn sigma_matches_eq2() {
        let q = UniformQuantizer::new(0.0, 3.0, 4).unwrap();
        assert!((q.sigma() - 15.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn codes_monotone_in_input() {
        let q = UniformQuantizer::new(-5.0, 5.0, 4).unwrap();
        let mut prev = 0;
        for i in 0..50 {
            let x = -5.0 + 10.0 * i as f32 / 49.0;
            let c = q.quantize(x);
            assert!(c >= prev);
            prev = c;
        }
    }
}

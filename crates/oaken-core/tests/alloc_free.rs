//! Proves the scratch quantize/dequantize paths are allocation-free: a
//! 1k-token decode loop through `roundtrip_vector_into` and
//! `dequantize_vector_into` with reused buffers performs **zero** heap
//! allocations after warm-up (acceptance criterion of the incremental
//! cache work — the hardware engine's fixed SRAM buffers, in software).
//!
//! This file intentionally holds a single test: the counting global
//! allocator must not observe allocations from concurrently running tests.

use oaken_core::{FusedVector, KvKind, OakenConfig, OakenQuantizer, OakenScratch, OfflineProfiler};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn kv_row(d: usize, seed: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            let u = ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed * 7_919)
                >> 33) as f32
                / (1u64 << 31) as f32;
            let base = (u - 0.5) * 6.0;
            match i % 29 {
                0 => base * 10.0,
                1 => base * 0.01,
                _ => base,
            }
        })
        .collect()
}

#[test]
fn thousand_token_decode_loop_makes_zero_allocations() {
    let d = 256;
    let tokens = 1_000;
    let config = OakenConfig::default();
    let mut profiler = OfflineProfiler::new(config.clone(), 1);
    for s in 0..16 {
        profiler.observe(0, KvKind::Key, &kv_row(d, s));
        profiler.observe(0, KvKind::Value, &kv_row(d, s));
    }
    let q = OakenQuantizer::new(config, profiler.try_finish().unwrap());

    // Pre-generate inputs and pre-encode fused vectors (storage allocation
    // is allowed to allocate; the scratch paths are what must not).
    let rows: Vec<Vec<f32>> = (0..tokens).map(|t| kv_row(d, 100 + t as u64)).collect();
    let fused: Vec<FusedVector> = rows
        .iter()
        .map(|r| q.quantize_vector(r, 0, KvKind::Key).unwrap())
        .collect();

    let mut scratch = OakenScratch::new();
    let mut out = Vec::new();

    // Warm-up pass over every row: scratch and output buffers grow to
    // their steady-state capacity (max outlier count across the rows).
    for (row, fv) in rows.iter().zip(&fused) {
        out.clear();
        q.roundtrip_vector_into(row, 0, KvKind::Key, &mut scratch, &mut out)
            .unwrap();
        out.clear();
        q.dequantize_vector_into(fv, 0, KvKind::Key, &mut out)
            .unwrap();
    }

    // Measured pass: the full 1k-token loop must not allocate at all.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut checksum = 0.0f32;
    for (row, fv) in rows.iter().zip(&fused) {
        out.clear();
        q.roundtrip_vector_into(row, 0, KvKind::Key, &mut scratch, &mut out)
            .unwrap();
        checksum += out[0];
        out.clear();
        q.dequantize_vector_into(fv, 0, KvKind::Key, &mut out)
            .unwrap();
        checksum += out[d - 1];
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(checksum.is_finite());
    assert_eq!(
        delta, 0,
        "scratch decode loop performed {delta} heap allocations over {tokens} tokens"
    );
}

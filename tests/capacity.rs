//! Cross-crate capacity consistency: the analytical capacity model of
//! `oaken-accel` and the page-level OOM of `oaken-mmu` must tell the same
//! story about when a workload fits.

use oaken::accel::{AcceleratorSpec, QuantPolicy, SystemModel};
use oaken::mmu::{AllocError, MmuSim, StreamClass, StreamKey};
use oaken::model::ModelConfig;

#[test]
fn analytical_and_page_level_capacity_agree() {
    // Build a miniature device: 1 MiB of KV memory in 4 KiB pages, and a
    // miniature model; both layers of the stack must agree on the max
    // number of 1024-token requests that fit (long enough that per-stream
    // page fragmentation stays second-order).
    let page_size = 4096usize;
    let num_pages = 256u32; // 1 MiB
    let kv_dim = 64usize;
    let layers = 2usize;
    let tokens_per_req = 1024usize;
    let bits = 4.8f64;
    let bytes_per_token_per_stream = (kv_dim as f64 * bits / 8.0).ceil() as u32; // one K or V row

    // Page-level: fill the MMU with whole requests until OOM.
    let mut mmu = MmuSim::new(num_pages, page_size);
    let mut fitted = 0u32;
    'outer: for req in 0..10_000u32 {
        for t in 0..tokens_per_req {
            for layer in 0..layers {
                for class in [StreamClass::Dense, StreamClass::Sparse] {
                    // Dense stream carries the packed payload; model the
                    // sparse side at ~10% of it.
                    let bytes = match class {
                        StreamClass::Dense => bytes_per_token_per_stream,
                        StreamClass::Sparse => (bytes_per_token_per_stream / 10).max(1),
                    };
                    let key = StreamKey {
                        request: req,
                        layer: layer as u16,
                        head: (t % 4) as u16,
                        class,
                    };
                    match mmu.write_token(key, bytes) {
                        Ok(_) => {}
                        Err(AllocError::OutOfPages { .. }) => break 'outer,
                        Err(e) => panic!("unexpected MMU error: {e}"),
                    }
                }
            }
        }
        fitted = req + 1;
    }
    assert!(fitted > 0, "at least one request must fit");

    // Analytical: every token writes one dense and one sparse entry per
    // layer (the loop above), so the true per-request footprint is
    // tokens × layers × (dense + sparse) bytes.
    let capacity_bytes = num_pages as u64 * page_size as u64;
    let sparse_bytes = (bytes_per_token_per_stream / 10).max(1);
    let per_req =
        (tokens_per_req * layers) as f64 * f64::from(bytes_per_token_per_stream + sparse_bytes);
    let analytical = (capacity_bytes as f64 / per_req) as u32;
    let ratio = f64::from(fitted) / f64::from(analytical.max(1));
    assert!(
        (0.5..=1.5).contains(&ratio),
        "page-level fitted {fitted} vs analytical {analytical} (fragmentation should cost <2x)"
    );
}

#[test]
fn quantization_extends_max_batch_by_bit_ratio() {
    let m = ModelConfig::llama2_13b();
    let fp16 = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::fp16());
    let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
    let b_fp16 = fp16.max_concurrent_batch(&m, 2048);
    let b_oaken = oaken.max_concurrent_batch(&m, 2048);
    let gain = b_oaken as f64 / b_fp16 as f64;
    // 16/4.8 = 3.33×, modulo integer truncation.
    assert!((2.8..3.8).contains(&gain), "capacity gain {gain}");
}

#[test]
fn analytic_and_pool_admission_share_bytes_per_token() {
    // Regression for the duplicated-capacity-math fix: the analytic model
    // (`SystemModel::max_concurrent_batch`) and the executed pool's
    // admission both route through `ModelConfig::kv_bytes_per_token`, so
    // at matched bit-widths the pool's nominal page demand must equal the
    // analytic per-request KV bytes, modulo only page rounding.
    use oaken::model::PagedKvPool;

    let m = ModelConfig::llama2_7b().proxy(4, 256);
    let bits = 32.0; // exact pool
    let sys = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::fp16());
    let page_size = 4096usize;
    let pool = PagedKvPool::for_model(&m, None, 4096, page_size);

    for tokens in [64usize, 256, 1024] {
        let analytic_bytes = tokens as u64 * m.kv_bytes_per_token(bits);
        assert_eq!(
            pool.bytes_per_token(),
            m.kv_bytes_per_token(bits),
            "pool must use the shared bytes-per-token helper"
        );
        let pool_pages = pool.pages_for_tokens(tokens);
        let analytic_pages = analytic_bytes.div_ceil(page_size as u64);
        // Per-stream rounding can only add pages (≤ one page per stream),
        // never remove them.
        let streams = 2 * m.num_layers as u64 * m.num_kv_heads as u64;
        assert!(
            pool_pages >= analytic_pages && pool_pages <= analytic_pages + streams,
            "tokens {tokens}: pool {pool_pages} vs analytic {analytic_pages} (+{streams} max)"
        );
    }
    // And the analytic side itself: memory_required decomposes into the
    // shared helpers exactly.
    let req = sys.memory_required(&m, 8, 2048);
    assert_eq!(
        req,
        sys.reserved_bytes(&m) + 8 * sys.kv_bytes_per_request(&m, 2048)
    );
}

#[test]
fn weights_that_do_not_fit_are_always_oom() {
    // Llama2-70B FP16 weights exceed 80 GB: every batch OOMs on HBM.
    let m = ModelConfig::llama2_70b();
    let sys = SystemModel::new(AcceleratorSpec::oaken_hbm(), QuantPolicy::oaken());
    assert_eq!(sys.max_concurrent_batch(&m, 2048), 0);
    let r = sys.run(&m, &oaken::accel::Workload::one_k_one_k(16));
    assert!(r.oom);
}

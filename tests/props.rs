//! Cross-crate property tests: quantization round-trip invariants, fused
//! encoding integrity, and MMU allocation laws under randomized inputs.

use oaken::core::{
    classify, GroupKind, KvKind, OakenConfig, OakenQuantizer, OfflineProfiler, Thresholds,
};
use oaken::mmu::{MmuSim, StreamClass, StreamKey};
use proptest::prelude::*;

fn quantizer_for(samples: &[Vec<f32>]) -> OakenQuantizer {
    let config = OakenConfig::default();
    let mut p = OfflineProfiler::new(config.clone(), 1);
    for s in samples {
        p.observe(0, KvKind::Key, s);
        p.observe(0, KvKind::Value, s);
    }
    OakenQuantizer::new(config, p.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Classification is total and respects the threshold geometry.
    #[test]
    fn classification_total_and_ordered(
        x in -1_000.0f32..1_000.0,
        a in -100.0f32..0.0,
        b in 0.0f32..100.0,
    ) {
        let t = Thresholds::new(a * 2.0, a * 0.01, b * 0.01, b * 2.0).unwrap();
        let g = classify(x, &t);
        match g {
            GroupKind::Outer => prop_assert!(x < t.outer_lo || x > t.outer_hi),
            GroupKind::Inner => prop_assert!(x >= t.inner_lo && x <= t.inner_hi),
            GroupKind::Middle => prop_assert!(
                (x >= t.outer_lo && x < t.inner_lo) || (x > t.inner_hi && x <= t.outer_hi)
            ),
        }
    }

    /// Quantize→dequantize preserves length, finiteness, and a global
    /// error bound tied to the vector's dynamic range.
    #[test]
    fn oaken_roundtrip_bounded(values in prop::collection::vec(-50.0f32..50.0, 16..512)) {
        let q = quantizer_for(std::slice::from_ref(&values));
        let fv = q.quantize_vector(&values, 0, KvKind::Key).unwrap();
        let back = q.dequantize_vector(&fv, 0, KvKind::Key).unwrap();
        prop_assert_eq!(back.len(), values.len());
        let range = values.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
        for (a, b) in values.iter().zip(&back) {
            prop_assert!(b.is_finite());
            // 4-bit middle codes over a profiled range: allow a granule of
            // range/4 as a loose global bound (typical error ≪ this).
            prop_assert!((a - b).abs() <= range / 3.0 + 1e-3, "a={} b={}", a, b);
        }
    }

    /// The encoded form is internally consistent: outlier count matches the
    /// sparse stream, block counts sum to the outlier count, and payload
    /// accounting is exact.
    #[test]
    fn fused_encoding_consistent(values in prop::collection::vec(-20.0f32..20.0, 1..300)) {
        let q = quantizer_for(std::slice::from_ref(&values));
        let fv = q.quantize_vector(&values, 0, KvKind::Value).unwrap();
        let outliers = fv.decode_outliers();
        prop_assert_eq!(outliers.len(), fv.num_outliers());
        let block_sum: usize = fv.block_counts().iter().map(|&c| c as usize).sum();
        prop_assert_eq!(block_sum, fv.num_outliers());
        prop_assert_eq!(fv.payload_bytes(), fv.dense_bytes().len() + fv.sparse_bytes().len() + 8);
        // Outlier indices strictly increasing and in range.
        for w in outliers.windows(2) {
            prop_assert!(w[0].index < w[1].index);
        }
        for o in &outliers {
            prop_assert!(o.index < values.len());
        }
    }

    /// MMU: bytes written equal bytes readable, per-stream, always.
    #[test]
    fn mmu_conservation(
        writes in prop::collection::vec((0u16..4, 1u32..200), 1..100),
    ) {
        let mut mmu = MmuSim::new(1024, 256);
        let mut expected = std::collections::HashMap::new();
        for (head, bytes) in &writes {
            let key = StreamKey { request: 1, layer: 0, head: *head, class: StreamClass::Dense };
            mmu.write_token(key, *bytes).unwrap();
            *expected.entry(*head).or_insert(0u64) += u64::from(*bytes);
        }
        for (head, total) in expected {
            let key = StreamKey { request: 1, layer: 0, head, class: StreamClass::Dense };
            let plan = mmu.read_plan(&key, 64);
            prop_assert_eq!(plan.total_bytes, total);
        }
    }

    /// MMU: freeing a request returns the allocator to its prior state.
    #[test]
    fn mmu_free_restores_capacity(
        writes in prop::collection::vec((0u16..4, 1u32..200), 1..60),
    ) {
        let mut mmu = MmuSim::new(512, 256);
        let before = mmu.allocator().free_pages();
        for (head, bytes) in &writes {
            let key = StreamKey { request: 9, layer: 0, head: *head, class: StreamClass::Sparse };
            mmu.write_token(key, *bytes).unwrap();
        }
        mmu.free_request(9).unwrap();
        prop_assert_eq!(mmu.allocator().free_pages(), before);
    }
}

//! End-to-end integration: synthetic model → offline profiling → quantized
//! KV-cache inference → accuracy, spanning oaken-model, oaken-core,
//! oaken-baselines, and oaken-eval.

use oaken::baselines::{Fp16Reference, TenderStyle};
use oaken::core::{GroupStats, KvQuantizer, OakenConfig};
use oaken::eval::harness::EvalSpec;
use oaken::eval::{profile_oaken, EvalHarness};
use oaken::model::{ExactCache, Model, ModelConfig, QuantizedCache};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

fn proxy_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(3, 48), 2025)
}

#[test]
fn profiled_thresholds_hit_target_ratios_on_live_kv() {
    // The offline thresholds must deliver ~4%/90%/6% occupancy on KV
    // vectors from *unseen* inference — the core online-offline contract.
    let model = proxy_model();
    let config = OakenConfig::default();
    let quantizer = profile_oaken(&model, config, 10, 40, 1);

    let stats: Rc<RefCell<GroupStats>> = Rc::new(RefCell::new(GroupStats::default()));
    let thresholds = quantizer.thresholds().clone();
    {
        let mut session = model.session(Box::new(ExactCache::new()));
        let s = Rc::clone(&stats);
        session.set_kv_observer(Box::new(move |layer, kind, values| {
            let t = thresholds.get(layer, kind).expect("profiled layer");
            let obs = GroupStats::of(values, t);
            let mut acc = s.borrow_mut();
            *acc = acc.merge(&obs);
        }));
        for tok in [5u32, 77, 130, 9, 41, 200, 3, 99, 160, 28, 77, 12] {
            session.advance(tok);
        }
    }
    let stats = stats.borrow();
    let outlier = stats.outlier_fraction();
    assert!(
        (0.02..0.30).contains(&outlier),
        "outlier fraction {outlier} far from the 10% target"
    );
}

#[test]
fn quantized_cache_inference_stays_close_to_exact() {
    let model = proxy_model();
    let quantizer = profile_oaken(&model, OakenConfig::default(), 10, 40, 1);
    let tokens: Vec<u32> = (0..24).map(|i| (i * 37 + 11) % 256).collect();

    let mut exact = model.session(Box::new(ExactCache::new()));
    let exact_logits = exact.prefill(&tokens);

    let mut quant = model.session(Box::new(QuantizedCache::new(Arc::new(quantizer))));
    let quant_logits = quant.prefill(&tokens);

    // Logits drift but the distribution must stay strongly correlated.
    let dot: f64 = exact_logits
        .iter()
        .zip(&quant_logits)
        .map(|(&a, &b)| f64::from(a) * f64::from(b))
        .sum();
    let na: f64 = exact_logits
        .iter()
        .map(|&a| f64::from(a) * f64::from(a))
        .sum();
    let nb: f64 = quant_logits
        .iter()
        .map(|&b| f64::from(b) * f64::from(b))
        .sum();
    let cosine = dot / (na.sqrt() * nb.sqrt());
    assert!(cosine > 0.90, "logit cosine similarity {cosine}");

    // Functionally, the exact model's top token must survive near the top
    // of the quantized ranking (greedy decoding rarely diverges).
    let top_exact = oaken::tensor::argmax(&exact_logits).unwrap();
    let mut ranked: Vec<usize> = (0..quant_logits.len()).collect();
    ranked.sort_by(|&a, &b| quant_logits[b].partial_cmp(&quant_logits[a]).unwrap());
    let rank = ranked.iter().position(|&i| i == top_exact).unwrap();
    assert!(
        rank < 5,
        "exact top token fell to rank {rank} under quantization"
    );
}

#[test]
fn table2_ordering_oaken_between_fp16_and_tender() {
    // The paper's accuracy ordering: FP16 ≥ Oaken > Tender (coarse groups).
    let model = proxy_model();
    let harness = EvalHarness::new(&model, &EvalSpec::quick());

    let fp16 = harness.evaluate(Some(Arc::new(Fp16Reference::new())));
    let oaken_q = profile_oaken(&model, OakenConfig::default(), 10, 40, 1);
    let oaken = harness.evaluate(Some(Arc::new(oaken_q)));
    let tender = harness.evaluate(Some(Arc::new(TenderStyle::default())));

    assert!(
        oaken.perplexity <= fp16.perplexity * 1.30,
        "oaken ppl {} vs fp16 {}",
        oaken.perplexity,
        fp16.perplexity
    );
    assert!(
        oaken.perplexity <= tender.perplexity,
        "oaken ppl {} should not exceed tender {}",
        oaken.perplexity,
        tender.perplexity
    );
}

#[test]
fn effective_bits_ordering_holds_end_to_end() {
    let model = proxy_model();
    let d = model.config().kv_dim();
    let oaken_q = profile_oaken(&model, OakenConfig::default(), 6, 32, 3);
    let eb_oaken = oaken_q.effective_bits(1024, d);
    let eb_fp16 = Fp16Reference::new().effective_bits(1024, d);
    let eb_tender = TenderStyle::default().effective_bits(1024, d);
    assert!(eb_tender < eb_oaken, "{eb_tender} vs {eb_oaken}");
    assert!(eb_oaken < eb_fp16 / 2.5, "{eb_oaken} vs {eb_fp16}");
}

#[test]
fn gqa_and_moe_proxies_run_quantized() {
    // Every structural feature must survive the quantized cache path.
    for cfg in [
        ModelConfig::llama2_70b().proxy(2, 32),   // GQA
        ModelConfig::mistral_7b().proxy(2, 32),   // GQA + sliding window
        ModelConfig::mixtral_8x7b().proxy(2, 32), // GQA + MoE
        ModelConfig::opt_6_7b().proxy(2, 32),     // LayerNorm + learned pos
    ] {
        let name = cfg.name.clone();
        let model = Model::synthetic(cfg, 7);
        let q = profile_oaken(&model, OakenConfig::default(), 4, 16, 5);
        let mut session = model.session(Box::new(QuantizedCache::new(Arc::new(q))));
        let logits = session.prefill(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(
            logits.iter().all(|v| v.is_finite()),
            "non-finite logits for {name}"
        );
    }
}

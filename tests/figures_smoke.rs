//! Smoke tests for every figure/table pipeline with reduced parameters —
//! each bench binary's core computation must run and produce the paper's
//! qualitative shape.

use oaken::accel::{
    generation_utilization, tradeoff_space, AcceleratorSpec, AreaModel, CapacityPolicy, OpSegment,
    PowerModel, QuantPolicy, SystemModel, Workload,
};
use oaken::core::AblationQuantizer;
use oaken::model::ModelConfig;
use oaken::serving::{simulate_trace, synthesize_requests, TraceSpec};

#[test]
fn fig01_tradeoff_space_shape() {
    let pts = tradeoff_space();
    let oaken = pts.iter().find(|p| p.name == "Oaken").expect("Oaken point");
    assert!(oaken.eff_capacity_gb > 800.0);
    assert!(oaken.throughput.is_some());
}

#[test]
fn fig03_mha_underutilized() {
    let r = generation_utilization(
        &AcceleratorSpec::a100(),
        &ModelConfig::llama2_13b(),
        32,
        1536,
    );
    assert!(r.get(OpSegment::Mha) < r.get(OpSegment::Ffn));
}

#[test]
fn fig04_oom_crossover() {
    let m = ModelConfig::opt_30b();
    let hbm = SystemModel::new(AcceleratorSpec::hbm_npu(), QuantPolicy::fp16())
        .with_capacity(CapacityPolicy::Fail);
    let lpddr = SystemModel::new(AcceleratorSpec::lpddr_npu(), QuantPolicy::fp16())
        .with_capacity(CapacityPolicy::Fail);
    // Small batch: HBM wins on bandwidth.
    let small = Workload::one_k_one_k(2);
    let rh = hbm.run(&m, &small);
    let rl = lpddr.run(&m, &small);
    assert!(!rh.oom && !rl.oom);
    assert!(
        rh.throughput > rl.throughput,
        "HBM should win small batches"
    );
    // Large batch: HBM OOMs, LPDDR keeps going (Figure 4b).
    let large = Workload::one_k_one_k(16);
    assert!(hbm.run(&m, &large).oom);
    assert!(!lpddr.run(&m, &large).oom);
}

#[test]
fn fig05_kv_dominates_memory_at_scale() {
    let m = ModelConfig::llama2_13b();
    let weights = m.weight_bytes(16.0) as f64;
    let kv_256 = (256u64 * 2048 * m.kv_bytes_per_token(16.0)) as f64;
    let share = kv_256 / (kv_256 + weights);
    assert!(share > 0.85, "KV share at batch 256: {share}");
}

#[test]
fn fig11_oaken_lpddr_wins_at_batch_256() {
    let m = ModelConfig::llama2_13b();
    let w = Workload::one_k_one_k(256);
    let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()).run(&m, &w);
    for sys in [
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16()),
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::kvquant()),
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::kivi()),
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::qserve()),
        SystemModel::new(AcceleratorSpec::tender(), QuantPolicy::tender()),
        SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16()),
    ] {
        let r = sys.run(&m, &w);
        assert!(
            oaken.throughput > r.throughput,
            "{} ({}) should trail Oaken ({})",
            sys.name(),
            r.throughput,
            oaken.throughput
        );
    }
}

#[test]
fn fig12b_asic_hides_quantization_gpu_does_not() {
    let m = ModelConfig::llama2_7b();
    let asic = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken())
        .generation_iteration(&m, 64, 1536);
    let gpu = SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::oaken_gpu())
        .generation_iteration(&m, 64, 1536);
    let asic_frac = (asic.quant_exposed + asic.dequant_exposed) / asic.total();
    let gpu_frac = (gpu.quant_exposed + gpu.dequant_exposed) / gpu.total();
    assert!(asic_frac < 0.06, "ASIC exposure {asic_frac}");
    assert!(gpu_frac > asic_frac * 2.0, "GPU exposure {gpu_frac}");
}

#[test]
fn fig13_lpddr_reaches_32k_hbm_does_not() {
    let m = ModelConfig::llama2_13b();
    let w32k = Workload {
        batch: 16,
        input_len: 16384,
        output_len: 16384,
    };
    let hbm = SystemModel::new(AcceleratorSpec::oaken_hbm(), QuantPolicy::oaken())
        .with_capacity(CapacityPolicy::Fail)
        .run(&m, &w32k);
    let lpddr = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken())
        .with_capacity(CapacityPolicy::Fail)
        .run(&m, &w32k);
    assert!(hbm.oom, "80 GB cannot hold 16 × 32K quantized KV + weights");
    assert!(!lpddr.oom, "256 GB should");
}

#[test]
fn fig14_trace_shapes() {
    let m = ModelConfig::llama2_13b();
    let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
    let lpu = SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16());
    let gain = |spec: &TraceSpec| {
        let reqs = synthesize_requests(spec, 64, 3);
        simulate_trace(&oaken, &m, &reqs, 32).gen_throughput
            / simulate_trace(&lpu, &m, &reqs, 32).gen_throughput
    };
    assert!(gain(&TraceSpec::burstgpt()) > gain(&TraceSpec::conversation()));
}

#[test]
fn table3_rows_cover_group_counts() {
    let rows = AblationQuantizer::paper_rows();
    let counts: Vec<usize> = rows.iter().map(|r| r.num_groups()).collect();
    assert!(counts.contains(&2));
    assert!(counts.contains(&3));
    assert!(counts.contains(&4));
    assert!(counts.contains(&5));
    for r in &rows {
        assert!((r.outlier_fraction() - 0.10).abs() < 1e-9, "{}", r.label);
    }
}

#[test]
fn table4_area_and_power() {
    let area = AreaModel::tsmc28();
    assert!((area.oaken_overhead_percent() - 8.21).abs() < 2.0);
    let p = PowerModel::oaken_lpddr().total_w(256, area.core_mm2());
    assert!(p < 400.0, "below the A100 TDP");
}
